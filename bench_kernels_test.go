// Per-kernel benchmark suite for the math floor (DESIGN.md §11): every GEMM
// orientation the models use, at the exact shapes the tiny-scale fig7/table1
// workloads hit, each measured at both dtypes against tensor.MatMulRef — the
// textbook ascending-k reference the blocked kernels are bit-identical to.
// Each float32 entry also records its speedup over the float64 blocked kernel
// at the same shape: the SIMD-width-aware f32 path must actually buy
// throughput, not just narrower storage. After each benchmark family runs,
// the accumulated results are written to BENCH_kernels.json (override with
// FEDCA_BENCH_KERNELS_JSON) so kernel regressions show up as a speedup-ratio
// trajectory, not a vibe.
//
//	go test -bench 'BenchmarkGEMM|BenchmarkConv' -benchtime=100x .
package fedca_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"fedca/internal/nn"
	"fedca/internal/rng"
	"fedca/internal/tensor"
)

// gemmShape names one GEMM the model hot loop issues. m×k times k×n in the
// kernel's own orientation (for NT the second operand is stored n×k, for TN
// the first is stored k×m).
type gemmShape struct {
	name    string
	m, k, n int
}

// Shapes from the tiny-scale CNN (fig7/table1 workload: conv1 3×16×16 k5 p2,
// conv2 6×8×8 k5 p2, fc1 256→120, batch 16) and the LSTM (hidden 24, gates
// 96, batch 16). Comments give the producing operation.
var (
	gemmShapesNT = []gemmShape{
		{"conv1_fwd_6x75x256", 6, 75, 256},   // W[6,75]·col[256,75]ᵀ
		{"conv2_fwd_16x150x64", 16, 150, 64}, // W[16,150]·col[64,150]ᵀ
		{"fc1_fwd_16x256x120", 16, 256, 120}, // x[16,256]·W[120,256]ᵀ
		{"lstm_gates_16x24x96", 16, 24, 96},  // h[16,24]·Whh[96,24]ᵀ
	}
	gemmShapesNN = []gemmShape{
		{"fc1_dx_16x120x256", 16, 120, 256}, // dout[16,120]·W[120,256]
		{"conv2_dW_16x64x150", 16, 64, 150}, // dout[16,64]·col[64,150] (MatMulPacked)
		{"lstm_dx_16x96x24", 16, 96, 24},    // dgates[16,96]·Whh[96,24]
	}
	gemmShapesTN = []gemmShape{
		{"conv2_dcol_64x16x150", 64, 16, 150}, // dout[16,64]ᵀ·W[16,150]
		{"fc1_dW_120x16x256", 120, 16, 256},   // dout[16,120]ᵀ·x[16,256]
		{"conv1_dcol_256x6x75", 256, 6, 75},   // dout[6,256]ᵀ·W[6,75]
	}
)

type kernelReport struct {
	BlockedSecPerOp float64 `json:"blocked_sec_per_op"`
	RefSecPerOp     float64 `json:"ref_sec_per_op,omitempty"`
	Speedup         float64 `json:"speedup_vs_ref,omitempty"`
	// SpeedupVsF64 is set on float32 entries only: the same shape's float64
	// blocked time divided by this entry's. CI pins it ≥ 1.3 at the GEMM
	// shapes — the floor the mixed-precision path must hold to be worth its
	// different training trajectory.
	SpeedupVsF64 float64 `json:"speedup_vs_f64,omitempty"`
}

var (
	kernelReportMu sync.Mutex
	kernelReports  = map[string]*kernelReport{}
)

func fillRandOf[F tensor.Float](r *rand.Rand, t *tensor.TensorOf[F]) {
	d := t.Data()
	for i := range d {
		d[i] = F(r.NormFloat64())
	}
}

func dtypeName[F tensor.Float]() string {
	var z F
	if _, ok := any(z).(float32); ok {
		return "f32"
	}
	return "f64"
}

// recordKernel stores one entry; for an f32 entry it back-references the f64
// entry of the same family/shape to compute the cross-dtype speedup, so the
// f64 benchmark of a shape must run first (the benchmark loops guarantee it).
func recordKernel(family, dtype, shape string, rep *kernelReport) {
	kernelReportMu.Lock()
	defer kernelReportMu.Unlock()
	if dtype == "f32" && rep.BlockedSecPerOp > 0 {
		if base, ok := kernelReports[family+"/f64/"+shape]; ok && base.BlockedSecPerOp > 0 {
			rep.SpeedupVsF64 = base.BlockedSecPerOp / rep.BlockedSecPerOp
		}
	}
	kernelReports[family+"/"+dtype+"/"+shape] = rep
}

// benchGEMMPair times the blocked kernel and the reference kernel on the same
// operands and records the pair (plus their ratio) in the kernel report.
func benchGEMMPair[F tensor.Float](b *testing.B, family string, s gemmShape, transA, transB bool,
	blocked func(dst, a, bt *tensor.TensorOf[F])) {
	dtype := dtypeName[F]()
	b.Run(dtype+"/"+s.name, func(b *testing.B) {
		r := rand.New(rand.NewSource(99))
		aRows, aCols := s.m, s.k
		if transA {
			aRows, aCols = s.k, s.m
		}
		bRows, bCols := s.k, s.n
		if transB {
			bRows, bCols = s.n, s.k
		}
		a := tensor.NewOf[F](aRows, aCols)
		bt := tensor.NewOf[F](bRows, bCols)
		fillRandOf(r, a)
		fillRandOf(r, bt)
		dst := tensor.NewOf[F](s.m, s.n)
		ref := tensor.NewOf[F](s.m, s.n)

		var blockedSec, refSec float64
		b.Run("blocked", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blocked(dst, a, bt)
			}
			blockedSec = b.Elapsed().Seconds() / float64(b.N)
		})
		b.Run("ref", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulRef(ref, a, bt, transA, transB)
			}
			refSec = b.Elapsed().Seconds() / float64(b.N)
		})
		for i, v := range ref.Data() {
			if dst.Data()[i] != v {
				b.Fatalf("blocked result diverges from reference at %d: %v vs %v", i, dst.Data()[i], v)
			}
		}
		rep := &kernelReport{BlockedSecPerOp: blockedSec, RefSecPerOp: refSec}
		if blockedSec > 0 {
			rep.Speedup = refSec / blockedSec
			b.ReportMetric(rep.Speedup, "speedup-vs-ref")
		}
		recordKernel(family, dtype, s.name, rep)
	})
}

func BenchmarkGEMMNN(b *testing.B) {
	for _, s := range gemmShapesNN {
		benchGEMMPair[float64](b, "NN", s, false, false, tensor.MatMul)
		benchGEMMPair[float32](b, "NN", s, false, false, tensor.MatMul)
	}
	writeKernelBenchJSON(b)
}

func BenchmarkGEMMTN(b *testing.B) {
	for _, s := range gemmShapesTN {
		benchGEMMPair[float64](b, "TN", s, true, false, tensor.MatMulTransA)
		benchGEMMPair[float32](b, "TN", s, true, false, tensor.MatMulTransA)
	}
	writeKernelBenchJSON(b)
}

func BenchmarkGEMMNT(b *testing.B) {
	for _, s := range gemmShapesNT {
		benchGEMMPair[float64](b, "NT", s, false, true, tensor.MatMulTransB)
		benchGEMMPair[float32](b, "NT", s, false, true, tensor.MatMulTransB)
	}
	writeKernelBenchJSON(b)
}

// benchConvs builds the tiny-scale CNN's two convolution stages with a
// batch-16 input, matching what every fig7/table1 training step executes.
func benchConvs[F tensor.Float]() (conv1, conv2 *nn.Conv2DOf[F], x1, x2 *tensor.TensorOf[F]) {
	rr := rng.New(7)
	g1 := tensor.NewConvGeom(3, 16, 16, 5, 5, 1, 2)
	conv1 = nn.NewConv2DOf[F]("conv1", g1, 6, rr)
	g2 := tensor.NewConvGeom(6, 8, 8, 5, 5, 1, 2)
	conv2 = nn.NewConv2DOf[F]("conv2", g2, 16, rr)
	r := rand.New(rand.NewSource(5))
	x1 = tensor.NewOf[F](16, conv1.InDim())
	x2 = tensor.NewOf[F](16, conv2.InDim())
	fillRandOf(r, x1)
	fillRandOf(r, x2)
	return
}

func benchConvForward[F tensor.Float](b *testing.B) {
	conv1, conv2, x1, x2 := benchConvs[F]()
	dtype := dtypeName[F]()
	for _, bc := range []struct {
		name string
		c    *nn.Conv2DOf[F]
		x    *tensor.TensorOf[F]
	}{{"conv1", conv1, x1}, {"conv2", conv2, x2}} {
		b.Run(dtype+"/"+bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bc.c.Forward(bc.x, false)
			}
			recordKernel("ConvForward", dtype, bc.name,
				&kernelReport{BlockedSecPerOp: b.Elapsed().Seconds() / float64(b.N)})
		})
	}
}

func BenchmarkConvForward(b *testing.B) {
	benchConvForward[float64](b)
	benchConvForward[float32](b)
	writeKernelBenchJSON(b)
}

// benchConvBackward times the full train step of each conv layer (forward in
// train mode + backward): Backward consumes the forward activations, so the
// pair is the unit the training loop actually pays for.
func benchConvBackward[F tensor.Float](b *testing.B) {
	conv1, conv2, x1, x2 := benchConvs[F]()
	dtype := dtypeName[F]()
	for _, bc := range []struct {
		name string
		c    *nn.Conv2DOf[F]
		x    *tensor.TensorOf[F]
	}{{"conv1", conv1, x1}, {"conv2", conv2, x2}} {
		b.Run(dtype+"/"+bc.name, func(b *testing.B) {
			dout := tensor.NewOf[F](16, bc.c.OutDim())
			fillRandOf(rand.New(rand.NewSource(6)), dout)
			for i := 0; i < b.N; i++ {
				bc.c.Forward(bc.x, true)
				bc.c.Backward(dout)
			}
			recordKernel("ConvFwdBwd", dtype, bc.name,
				&kernelReport{BlockedSecPerOp: b.Elapsed().Seconds() / float64(b.N)})
		})
	}
}

func BenchmarkConvBackward(b *testing.B) {
	benchConvBackward[float64](b)
	benchConvBackward[float32](b)
	writeKernelBenchJSON(b)
}

// writeKernelBenchJSON persists everything accumulated so far; each benchmark
// family rewrites the file, so a full-suite run leaves the complete report.
func writeKernelBenchJSON(b *testing.B) {
	kernelReportMu.Lock()
	defer kernelReportMu.Unlock()
	if len(kernelReports) == 0 {
		return
	}
	path := os.Getenv("FEDCA_BENCH_KERNELS_JSON")
	if path == "" {
		path = "BENCH_kernels.json"
	}
	doc := struct {
		Bench      string                   `json:"bench"`
		CPUs       int                      `json:"cpus"`
		GOMAXPROCS int                      `json:"gomaxprocs"`
		Kernels    map[string]*kernelReport `json:"kernels"`
	}{
		Bench:      "kernels",
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Kernels:    kernelReports,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", path)
}
