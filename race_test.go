package fedca_test

import (
	"runtime"
	"sync"
	"testing"

	"fedca"
)

// TestFedCAStatsPollingDuringRound polls Federation.FedCAStats from a
// monitoring goroutine while rounds run — the facade-level version of the
// internal/core stats race test. Meaningful under -race with GOMAXPROCS>1.
func TestFedCAStatsPollingDuringRound(t *testing.T) {
	opts := fedca.DefaultOptions()
	opts.Clients = 4
	opts.LocalIters = 6
	opts.BatchSize = 8
	opts.TrainSamples = 256
	opts.TestSamples = 64
	opts.FedCA.K = 6
	opts.FedCA.ProfilePeriod = 2
	f, err := fedca.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, ok := f.FedCAStats(); !ok {
				return
			}
			runtime.Gosched()
		}
	}()
	f.Run(3) // rounds 0 and 2 are anchors (period 2)
	close(done)
	wg.Wait()
	st, ok := f.FedCAStats()
	if !ok || st.AnchorRounds == 0 {
		t.Fatalf("stats = %+v ok=%v; expected anchor rounds", st, ok)
	}
}
