// Benchmark harness: one target per table/figure of the paper's evaluation
// (DESIGN.md §4). Each benchmark regenerates its artifact at the tiny scale
// and reports the shape statistics the paper's claims rest on as custom
// metrics (b.ReportMetric), so `go test -bench=.` doubles as a reproduction
// report. Runs are memoized by the cell executor in internal/execpool
// (DESIGN.md §10): within a process, identical cells shared by several
// figures (e.g. the fedavg/cnn convergence run behind Fig. 7, Table 1 and
// Fig. 9) run once and distinct cells compute in parallel under a CPU-token
// budget; across processes, setting FEDCA_BENCH_CACHE to a directory makes
// repeated invocations warm via the content-addressed result cache.
// FEDCA_BENCH_PARALLEL overrides the worker budget (1 = the serial
// reference path).
package fedca_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"fedca/internal/execpool"
	"fedca/internal/experiments"
)

const benchSeed = 42

func benchScale() experiments.Scale { return experiments.Tiny() }

var printedExperiments sync.Map

// benchExecutorOptions derives the executor configuration from the
// FEDCA_BENCH_PARALLEL / FEDCA_BENCH_CACHE environment knobs.
func benchExecutorOptions() execpool.Options {
	opts := execpool.Options{
		Workers:  experiments.DefaultWorkers(),
		CacheDir: os.Getenv("FEDCA_BENCH_CACHE"),
	}
	if v := os.Getenv("FEDCA_BENCH_PARALLEL"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			panic("FEDCA_BENCH_PARALLEL must be an integer: " + v)
		}
		opts.Workers = n
	}
	return opts
}

var configureBenchExecutor = sync.OnceFunc(func() {
	experiments.Configure(benchExecutorOptions())
})

// run executes the experiment once per b.N (served from the executor's cell
// cache after the first call), prints the rendered artifact once per
// experiment id — so the benchmark output doubles as the full reproduction
// report — and returns the result for metric reporting.
func run(b *testing.B, id string) *experiments.Result {
	b.Helper()
	configureBenchExecutor()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if _, done := printedExperiments.LoadOrStore(id, true); !done {
		fmt.Printf("\n--- %s (scale=%s seed=%d) ---\n%s\n", id, benchScale().Name, benchSeed, res.Text)
	}
	return res
}

// BenchmarkFig2ProgressCurves regenerates Fig. 2 and reports P@20% per model
// (the diminishing-marginal-benefit statistic; uniform contribution = 0.20).
func BenchmarkFig2ProgressCurves(b *testing.B) {
	res := run(b, "fig2")
	for _, m := range experiments.CurveModels {
		b.ReportMetric(res.Values["p20/"+m], "P20_"+m)
	}
}

// BenchmarkFig3LayerCurves regenerates Fig. 3 and reports the cross-layer
// curve gap (heterogeneity across layers).
func BenchmarkFig3LayerCurves(b *testing.B) {
	res := run(b, "fig3")
	for _, m := range experiments.CurveModels {
		b.ReportMetric(res.Values["gap/"+m+"/early"], "layergap_"+m)
	}
}

// BenchmarkFig4RoundSimilarity regenerates Fig. 4 and reports the worst
// consecutive-round curve RMSE (the periodical-profiling premise).
func BenchmarkFig4RoundSimilarity(b *testing.B) {
	res := run(b, "fig4")
	for _, m := range experiments.CurveModels {
		b.ReportMetric(res.Values["maxRMSE/"+m+"/late"], "rmse_"+m)
	}
}

// BenchmarkFig5SamplingFidelity regenerates Fig. 5 and reports the max
// deviation between full and min(50%,100)-sampled curves.
func BenchmarkFig5SamplingFidelity(b *testing.B) {
	res := run(b, "fig5")
	for _, m := range experiments.CurveModels {
		b.ReportMetric(res.Values["maxdiff/"+m+"/late"], "maxdiff_"+m)
	}
}

// BenchmarkFig7TimeToAccuracy regenerates Fig. 7 and reports each scheme's
// total virtual time on the CNN workload.
func BenchmarkFig7TimeToAccuracy(b *testing.B) {
	res := run(b, "fig7")
	for _, s := range experiments.ConvergenceSchemes {
		b.ReportMetric(res.Values["totaltime/cnn/"+s], "vtime_cnn_"+s)
	}
}

// BenchmarkTable1Convergence regenerates Table 1 and reports the headline
// ratios: FedCA total time vs FedAvg and vs FedAda (per model).
func BenchmarkTable1Convergence(b *testing.B) {
	res := run(b, "table1")
	for _, m := range experiments.CurveModels {
		avg := res.Values["total/"+m+"/fedavg"]
		ada := res.Values["total/"+m+"/fedada"]
		ca := res.Values["total/"+m+"/fedca"]
		if avg > 0 {
			b.ReportMetric(ca/avg, "fedca_vs_fedavg_"+m)
		}
		if ada > 0 {
			b.ReportMetric(ca/ada, "fedca_vs_fedada_"+m)
		}
	}
}

// BenchmarkFig8EarlyStopCDF regenerates Fig. 8a and reports the median
// early-stop iteration of FedCA and FedAda.
func BenchmarkFig8EarlyStopCDF(b *testing.B) {
	res := run(b, "fig8a")
	b.ReportMetric(res.Values["median/fedca"], "median_fedca")
	b.ReportMetric(res.Values["median/fedada"], "median_fedada")
}

// BenchmarkFig8EagerCDF regenerates Fig. 8b and reports the median eager-
// transmission iteration with and without retransmission.
func BenchmarkFig8EagerCDF(b *testing.B) {
	res := run(b, "fig8b")
	b.ReportMetric(res.Values["median/with-retrans"], "median_with")
	b.ReportMetric(res.Values["median/without-retrans"], "median_without")
	b.ReportMetric(res.Values["retransmissions"], "retransmissions")
}

// BenchmarkFig9Ablation regenerates Fig. 9 and reports each variant's best
// accuracy on CNN (v2's deficit vs v3 shows why retransmission matters).
func BenchmarkFig9Ablation(b *testing.B) {
	res := run(b, "fig9")
	for _, v := range []string{"fedavg", "v1", "v2", "v3"} {
		b.ReportMetric(res.Values["best/cnn/"+v], "best_cnn_"+v)
	}
}

// BenchmarkFig10Beta regenerates Fig. 10a (β sensitivity).
func BenchmarkFig10Beta(b *testing.B) {
	res := run(b, "fig10a")
	for _, beta := range []string{"0.1", "0.01", "0.001"} {
		b.ReportMetric(res.Values["total/beta"+beta], "vtime_beta"+beta)
	}
}

// BenchmarkFig10Thresholds regenerates Fig. 10b (T_e/T_r sensitivity).
func BenchmarkFig10Thresholds(b *testing.B) {
	res := run(b, "fig10b")
	b.ReportMetric(res.Values["best/te0.95-tr0.6"], "best_default")
	b.ReportMetric(res.Values["best/te0.95-tr0.8"], "best_strict")
	b.ReportMetric(res.Values["best/te0.85-tr0.6"], "best_loose")
}

// BenchmarkOverheadProfiling regenerates the Sec. 5.5 overhead accounting.
func BenchmarkOverheadProfiling(b *testing.B) {
	res := run(b, "ovh")
	for _, m := range experiments.CurveModels {
		b.ReportMetric(res.Values["samples/"+m], "samples_"+m)
		b.ReportMetric(res.Values["membytes/"+m]/1024, "profmem_KB_"+m)
	}
}

// BenchmarkAblationFloor: Eq. 2's benefit floor on vs off (DESIGN.md §5).
func BenchmarkAblationFloor(b *testing.B) {
	res := run(b, "abl-floor")
	b.ReportMetric(res.Values["best/with floor"], "best_with_floor")
	b.ReportMetric(res.Values["best/no floor"], "best_no_floor")
	b.ReportMetric(res.Values["meanstop/no floor"], "meanstop_no_floor")
}

// BenchmarkAblationSampling: per-layer sample caps 25/100/400 vs fidelity.
func BenchmarkAblationSampling(b *testing.B) {
	res := run(b, "abl-sampling")
	for _, cap := range []string{"25", "100", "400"} {
		b.ReportMetric(res.Values["dev/"+cap], "dev_cap"+cap)
	}
}

// BenchmarkAblationPeriod: profiling period 1/2/5/10.
func BenchmarkAblationPeriod(b *testing.B) {
	res := run(b, "abl-period")
	for _, p := range []string{"1", "2", "5", "10"} {
		b.ReportMetric(res.Values["total/"+p], "vtime_period"+p)
	}
}

// BenchmarkAblationDeadline: FedBalancer vs fixed-quantile deadlines.
func BenchmarkAblationDeadline(b *testing.B) {
	res := run(b, "abl-deadline")
	b.ReportMetric(res.Values["total/fedbalancer"], "vtime_fedbalancer")
	b.ReportMetric(res.Values["total/quantile-0.5"], "vtime_q50")
	b.ReportMetric(res.Values["total/quantile-0.9"], "vtime_q90")
}

// BenchmarkExtCompress: FedCA vs QSGD/top-k compression (Sec. 2.2 family).
func BenchmarkExtCompress(b *testing.B) {
	res := run(b, "ext-compress")
	for _, v := range []string{"fedavg", "fedavg+qsgd7", "fedavg+topk5", "fedca", "fedca+qsgd7"} {
		b.ReportMetric(res.Values["bytes/"+v]/1e6, "MB_"+v)
		b.ReportMetric(res.Values["best/"+v], "best_"+v)
	}
}

// BenchmarkExtSelection: participation strategies under heterogeneity.
func BenchmarkExtSelection(b *testing.B) {
	res := run(b, "ext-selection")
	for _, v := range []string{"fedavg", "oort50", "safa", "fedca"} {
		b.ReportMetric(res.Values["meanround/"+v], "round_s_"+v)
	}
}

// BenchmarkExtHyperparam: Sec. 6 future-work adaptive LR, implemented.
func BenchmarkExtHyperparam(b *testing.B) {
	res := run(b, "ext-hp")
	b.ReportMetric(res.Values["best/fedca"], "best_fedca")
	b.ReportMetric(res.Values["best/fedca+adaptlr"], "best_adaptlr")
}

// BenchmarkExtAsync: buffered asynchronous FL (FedBuff-style) vs FedCA.
func BenchmarkExtAsync(b *testing.B) {
	res := run(b, "ext-async")
	b.ReportMetric(res.Values["best/fedca"], "best_fedca")
	b.ReportMetric(res.Values["best/async"], "best_async")
	b.ReportMetric(res.Values["staleness/mean"], "mean_staleness")
}
