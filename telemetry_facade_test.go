package fedca_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"fedca"
)

// TestFacadeTelemetry exercises the public observability surface: a sink
// attached through Options, the federation snapshot, and the introspection
// handler built by NewTelemetryMux.
func TestFacadeTelemetry(t *testing.T) {
	opts := fedca.DefaultOptions()
	opts.Clients = 4
	opts.LocalIters = 6
	opts.BatchSize = 8
	opts.TrainSamples = 256
	opts.TestSamples = 64
	tel := fedca.NewTelemetry()
	opts.Telemetry = tel
	f, err := fedca.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rounds := f.Run(2)

	if got := tel.Rounds.Value(); got != 2 {
		t.Fatalf("sink rounds = %v, want 2", got)
	}
	if tel.Tracer().Len() == 0 {
		t.Fatal("sink recorded no spans")
	}

	snap := f.Snapshot()
	if snap.Round != 2 {
		t.Fatalf("snapshot round = %d, want 2", snap.Round)
	}
	last := rounds[len(rounds)-1]
	if snap.VirtualTime != last.End || snap.Accuracy != last.Accuracy {
		t.Fatalf("snapshot %+v does not match last round %+v", snap, last)
	}
	if snap.FedCA == nil {
		t.Fatal("snapshot missing FedCA stats for the fedca scheme")
	}

	srv := httptest.NewServer(fedca.NewTelemetryMux(tel, f))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		body.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(body.String(), "fedca_rounds_total 2") {
		t.Fatalf("GET /metrics = %d:\n%s", resp.StatusCode, body.String())
	}

	resp, err = srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var got fedca.Snapshot
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("/status is not a JSON snapshot: %v", err)
	}
	resp.Body.Close()
	if got.Round != snap.Round || got.Accuracy != snap.Accuracy {
		t.Fatalf("/status %+v does not match Snapshot() %+v", got, snap)
	}
}
