// Layerwise: a walkthrough of FedCA's per-layer machinery on a single client
// round.
//
// It runs one client's local round directly through fl.RunClientRound with a
// FedCA controller, then prints, for every parameter tensor:
//
//   - its profiled statistical-progress curve (from the anchor round),
//   - the iteration at which the curve crosses T_e (eager transmission), and
//   - whether the error-feedback check (Eq. 6) forced a retransmission.
//
// go run ./examples/layerwise
package main

import (
	"fmt"

	"fedca/internal/core"
	"fedca/internal/expcfg"
	"fedca/internal/fl"
	"fedca/internal/report"
	"fedca/internal/rng"
	"fedca/internal/trace"
)

func main() {
	w := expcfg.CNN()
	w.Img.Height, w.Img.Width, w.Img.Classes = 8, 8, 4
	w = w.Shrink(30, 1024, 512, 16)

	const seed = 11
	tb := expcfg.Build(w, 4, trace.Config{}, seed)

	opt := core.DefaultOptions(w.FL.LocalIters)
	opt.ProfilePeriod = 2 // anchor at rounds 0, 2, 4, …
	opt.Te = 0.8          // lower threshold so several layers fire here
	opt.EarlyStop = false // keep all iterations so the walkthrough is full-length
	scheme := core.NewScheme(opt, rng.New(seed))

	runner, err := tb.NewRunner(scheme)
	if err != nil {
		panic(err)
	}
	// Round 0: anchor (profiles curves). Round 1: FedCA acts on them.
	anchor := runner.RunRound()
	acted := runner.RunRound()
	fmt.Printf("anchor round dur=%.1fs, FedCA round dur=%.1fs\n\n", anchor.Duration(), acted.Duration())

	curves := scheme.Profiler(0).Curves()
	net := tb.Factory()
	ranges := net.ParamRanges()
	fmt.Printf("client 0: profiled curves from anchor round %d (K=%d, T_e=%.2f)\n\n", curves.Round, curves.K, opt.Te)
	fmt.Printf("%-14s %-28s %8s\n", "layer", "progress curve", "eager@")
	for l, rg := range ranges {
		curve := curves.Layer[l]
		cross := "-"
		for tau := 1; tau <= curves.K; tau++ {
			if curves.LayerAt(l, tau) >= opt.Te && curves.LayerAt(l, tau-1) < opt.Te {
				cross = fmt.Sprintf("iter %d", tau)
				break
			}
		}
		fmt.Printf("%-14s %-28s %8s\n", rg.Name, report.Sparkline(curve), cross)
	}

	st := scheme.Stats()
	fmt.Printf("\nround 1 behaviour: %d eager transmissions stood, %d retransmitted (cos < T_r=%.2f)\n",
		len(st.EagerIters), st.RetransmitsTotal, opt.Tr)
	for _, u := range acted.Collected {
		fmt.Printf("  client %d: %d eager, %d retransmitted, uploaded %.0f KB\n",
			u.ClientID, u.EagerSent, u.Retransmitted, u.UploadBytes/1024)
	}
	_ = fl.NoDeadline
}
