// Ablation: what each FedCA mechanism buys (the paper's Fig. 9 in miniature).
//
// Four configurations train the same workload from the same seed:
//
//	fedavg — no client autonomy
//	v1     — utility-guided early stop only
//	v2     — early stop + eager transmission, NO retransmission
//	v3     — full FedCA (early stop + eager transmission + error feedback)
//
// The point to notice: v2 can lose accuracy relative to v3 — eagerly
// transmitted layers that later deviate are never corrected — which is why
// the retransmission mechanism is indispensable.
//
//	go run ./examples/ablation
package main

import (
	"fmt"

	"fedca/internal/baseline"
	"fedca/internal/core"
	"fedca/internal/expcfg"
	"fedca/internal/fl"
	"fedca/internal/report"
	"fedca/internal/rng"
	"fedca/internal/trace"
)

func main() {
	w := expcfg.CNN()
	w.Img.Height, w.Img.Width, w.Img.Classes = 8, 8, 4
	w = w.Shrink(25, 1024, 512, 16)

	const clients = 8
	const rounds = 20
	const seed = 3

	variants := []struct {
		name   string
		scheme func() fl.Scheme
	}{
		{"fedavg", func() fl.Scheme { return baseline.FedAvg{} }},
		{"v1", func() fl.Scheme {
			o := core.V1Options(w.FL.LocalIters)
			o.ProfilePeriod = 5
			return core.NewScheme(o, rng.New(seed))
		}},
		{"v2", func() fl.Scheme {
			o := core.V2Options(w.FL.LocalIters)
			o.ProfilePeriod = 5
			// Aggressive eager threshold so the missing retransmission shows.
			o.Te = 0.7
			return core.NewScheme(o, rng.New(seed))
		}},
		{"v3", func() fl.Scheme {
			o := core.DefaultOptions(w.FL.LocalIters)
			o.ProfilePeriod = 5
			o.Te = 0.7
			return core.NewScheme(o, rng.New(seed))
		}},
	}

	fmt.Println("time-to-accuracy under the four variants (same data, init, traces):")
	for _, v := range variants {
		tb := expcfg.Build(w, clients, trace.PaperConfig(), seed)
		runner, err := tb.NewRunner(v.scheme())
		if err != nil {
			panic(err)
		}
		var accs []float64
		var t float64
		for i := 0; i < rounds; i++ {
			r := runner.RunRound()
			accs = append(accs, r.Accuracy)
			t = r.End
		}
		fmt.Printf("%-7s acc %s  final=%.3f  total=%.0fs\n", v.name, report.Sparkline(accs), accs[len(accs)-1], t)
	}
}
