// Communication: FedCA's overlap vs classical bit-reduction, through the
// public API.
//
// Three federations train the same workload on a communication-heavy setup:
// plain FedAvg, FedAvg with 4-bit QSGD quantization (the Sec. 2.2 family),
// and FedCA (computation-communication overlap via eager transmission).
// This example uses only the public fedca package — no internal imports.
//
//	go run ./examples/communication
package main

import (
	"fmt"

	fedca "fedca"
)

func main() {
	base := fedca.DefaultOptions()
	base.Clients = 8
	base.LocalIters = 20
	base.BatchSize = 16
	base.TrainSamples = 1024
	base.TestSamples = 512
	base.Seed = 21
	// Emulate a 20 MB model: ~12 s per full upload at 13.7 Mbps, so
	// communication genuinely competes with computation.
	base.ModelBytes = 20e6

	const rounds = 10
	variants := []struct {
		name     string
		scheme   string
		compress string
	}{
		{"fedavg (full precision)", "fedavg", "none"},
		{"fedavg + qsgd7 (4-bit)", "fedavg", "qsgd7"},
		{"fedca (overlap)", "fedca", "none"},
	}
	fmt.Printf("%-26s %10s %10s %10s\n", "variant", "vtime(s)", "final acc", "last round")
	for _, v := range variants {
		o := base
		o.Scheme = v.scheme
		o.Compress = v.compress
		f, err := fedca.New(o)
		if err != nil {
			panic(err)
		}
		rs := f.Run(rounds)
		last := rs[len(rs)-1]
		fmt.Printf("%-26s %10.1f %10.4f %9.1fs\n", v.name, f.Now(), f.Accuracy(), last.End-last.Start)
	}
	fmt.Println("\nQuantization shrinks every upload; FedCA instead hides upload time")
	fmt.Println("behind computation (and also stops needless iterations). The two are")
	fmt.Println("orthogonal — see `fedca-bench -exp ext-compress` for the combination.")
}
