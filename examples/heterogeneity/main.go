// Heterogeneity: the straggler scenario that motivates FedCA's intro.
//
// A fleet with strong static speed spread plus the paper's fast/slow
// dynamicity (Γ(2,40)/Γ(2,6) durations, U(1,5) slowdowns) trains the CNN
// workload under FedAvg, FedAda (server-side workload adaptation from stale
// history) and FedCA (intra-round client autonomy). The example prints each
// round's duration and the per-scheme mean, showing how FedCA reacts to
// slowdowns the server never sees.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"

	"fedca/internal/baseline"
	"fedca/internal/core"
	"fedca/internal/expcfg"
	"fedca/internal/fl"
	"fedca/internal/metrics"
	"fedca/internal/rng"
	"fedca/internal/trace"
)

func main() {
	w := expcfg.CNN()
	w.Img.Height, w.Img.Width, w.Img.Classes = 8, 8, 4
	w = w.Shrink(25, 1024, 512, 16)

	// Exaggerated heterogeneity: static spread σ=1.0 on top of the paper's
	// dynamic fast/slow toggling.
	tcfg := trace.PaperConfig()
	tcfg.HeterogeneitySigma = 1.0

	const clients = 16
	const rounds = 12
	const seed = 7

	type outcome struct {
		name     string
		results  []fl.RoundResult
		finalAcc float64
	}
	var outcomes []outcome

	schemes := []struct {
		name   string
		scheme fl.Scheme
	}{
		{"fedavg", baseline.FedAvg{}},
		{"fedada", baseline.FedAda{K: w.FL.LocalIters, Tradeoff: 0.5}},
		{"fedca", func() fl.Scheme {
			opt := core.DefaultOptions(w.FL.LocalIters)
			opt.ProfilePeriod = 5
			return core.NewScheme(opt, rng.New(seed))
		}()},
	}
	for _, s := range schemes {
		tb := expcfg.Build(w, clients, tcfg, seed)
		runner, err := tb.NewRunner(s.scheme)
		if err != nil {
			panic(err)
		}
		var rs []fl.RoundResult
		for i := 0; i < rounds; i++ {
			rs = append(rs, runner.RunRound())
		}
		outcomes = append(outcomes, outcome{s.name, rs, rs[len(rs)-1].Accuracy})
	}

	fmt.Printf("%5s", "round")
	for _, o := range outcomes {
		fmt.Printf(" %14s", o.name+" dur(s)")
	}
	fmt.Println()
	for i := 0; i < rounds; i++ {
		fmt.Printf("%5d", i)
		for _, o := range outcomes {
			fmt.Printf(" %14.1f", o.results[i].Duration())
		}
		fmt.Println()
	}
	fmt.Println()
	for _, o := range outcomes {
		// Skip round 0: FedCA profiles (full-length anchor) and FedAda has
		// no history yet, so both behave like FedAvg there.
		mean := metrics.MeanRoundDuration(o.results, 1)
		fmt.Printf("%-7s mean round (after bootstrap) %6.1fs   final acc %.3f\n", o.name, mean, o.finalAcc)
	}
}
