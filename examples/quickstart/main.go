// Quickstart: the smallest end-to-end FedCA run.
//
// It assembles a simulated federation (8 clients, non-IID synthetic CIFAR-like
// data, FedScale-like speed heterogeneity with the paper's fast/slow
// dynamicity), trains a LeNet-style CNN under FedCA for 15 rounds, and prints
// the virtual-time/accuracy trajectory next to plain FedAvg.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fedca/internal/baseline"
	"fedca/internal/core"
	"fedca/internal/expcfg"
	"fedca/internal/fl"
	"fedca/internal/rng"
	"fedca/internal/trace"
)

func main() {
	// A scaled-down CNN workload: 8×8 synthetic images, 4 classes,
	// K = 25 local iterations per round (see expcfg for the paper-sized one).
	w := expcfg.CNN()
	w.Img.Height, w.Img.Width, w.Img.Classes = 8, 8, 4
	w = w.Shrink(25, 1024, 512, 16)

	const clients = 8
	const rounds = 15
	const seed = 1

	run := func(name string, scheme fl.Scheme) {
		// Same seed ⇒ identical data, partitions, model init and speed
		// traces: only the scheme differs.
		tb := expcfg.Build(w, clients, trace.PaperConfig(), seed)
		runner, err := tb.NewRunner(scheme)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n%s\n%5s %10s %8s %8s\n", name, "round", "vtime(s)", "acc", "iters")
		for i := 0; i < rounds; i++ {
			r := runner.RunRound()
			fmt.Printf("%5d %10.1f %8.4f %8.1f\n", r.Round, r.End, r.Accuracy, r.MeanIterations)
		}
	}

	run("FedAvg (baseline)", baseline.FedAvg{})

	opt := core.DefaultOptions(w.FL.LocalIters) // β=0.01, Te=0.95, Tr=0.6
	opt.ProfilePeriod = 5
	run("FedCA (client autonomy)", core.NewScheme(opt, rng.New(seed)))

	fmt.Println("\nFedCA rounds shorten once the anchor round (round 0) has profiled")
	fmt.Println("statistical-progress curves and clients start stopping early and")
	fmt.Println("eagerly transmitting early-converged layers.")
}
