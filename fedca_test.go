package fedca_test

import (
	"testing"

	fedca "fedca"
)

func tinyOpts() fedca.Options {
	o := fedca.DefaultOptions()
	o.Clients = 4
	o.LocalIters = 8
	o.BatchSize = 8
	o.TrainSamples = 256
	o.TestSamples = 128
	return o
}

func TestFacadeDefaults(t *testing.T) {
	o := fedca.DefaultOptions()
	if o.Model != "cnn" || o.Scheme != "fedca" || o.Alpha != 0.1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestFacadeRunRound(t *testing.T) {
	f, err := fedca.New(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := f.RunRound()
	if r.Index != 0 || r.End <= r.Start || r.Collected == 0 {
		t.Fatalf("round = %+v", r)
	}
	if f.Now() != r.End {
		t.Fatalf("Now = %v, want %v", f.Now(), r.End)
	}
	if f.Accuracy() != r.Accuracy {
		t.Fatal("Accuracy mismatch")
	}
	if got := f.Rounds(); len(got) != 1 || got[0] != r {
		t.Fatalf("Rounds() = %+v", got)
	}
}

func TestFacadeAllSchemes(t *testing.T) {
	for _, scheme := range []string{"fedavg", "fedprox", "fedada", "fedca", "fedca-v1", "fedca-v2", "oort", "safa"} {
		o := tinyOpts()
		o.Scheme = scheme
		f, err := fedca.New(o)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		rs := f.Run(2)
		if len(rs) != 2 {
			t.Fatalf("%s: %d rounds", scheme, len(rs))
		}
		_, ok := f.FedCAStats()
		wantStats := scheme == "fedca" || scheme == "fedca-v1" || scheme == "fedca-v2"
		if ok != wantStats {
			t.Fatalf("%s: FedCAStats ok = %v", scheme, ok)
		}
	}
}

func TestFacadeAllModels(t *testing.T) {
	for _, model := range []string{"cnn", "lstm", "wrn"} {
		o := tinyOpts()
		o.Model = model
		o.Scheme = "fedavg"
		f, err := fedca.New(o)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if r := f.RunRound(); r.Collected == 0 {
			t.Fatalf("%s: empty round", model)
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	o := tinyOpts()
	o.Model = "transformer"
	if _, err := fedca.New(o); err == nil {
		t.Fatal("unknown model must error")
	}
	o = tinyOpts()
	o.Scheme = "magic"
	if _, err := fedca.New(o); err == nil {
		t.Fatal("unknown scheme must error")
	}
	o = tinyOpts()
	o.Clients = 0
	if _, err := fedca.New(o); err == nil {
		t.Fatal("zero clients must error")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() []fedca.Round {
		f, err := fedca.New(tinyOpts())
		if err != nil {
			t.Fatal(err)
		}
		return f.Run(3)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFacadeRunToAccuracy(t *testing.T) {
	o := tinyOpts()
	o.Scheme = "fedavg"
	o.LocalIters = 12
	f, err := fedca.New(o)
	if err != nil {
		t.Fatal(err)
	}
	c := f.RunToAccuracy(0.5, 30)
	if c.Rounds == 0 || c.TotalSeconds <= 0 {
		t.Fatalf("convergence = %+v", c)
	}
	if c.Reached && c.BestAccuracy < 0.5 {
		t.Fatalf("reached but best = %v", c.BestAccuracy)
	}
}

func TestFacadeCompression(t *testing.T) {
	o := tinyOpts()
	o.Scheme = "fedavg"
	o.Compress = "qsgd7"
	f, err := fedca.New(o)
	if err != nil {
		t.Fatal(err)
	}
	f.RunRound()
	o.Compress = "zip"
	if _, err := fedca.New(o); err == nil {
		t.Fatal("bad compressor spec must error")
	}
}

func TestFacadeDropout(t *testing.T) {
	o := tinyOpts()
	o.DropoutProb = 0.5
	o.Scheme = "fedavg"
	f, err := fedca.New(o)
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for i := 0; i < 4; i++ {
		drops += f.RunRound().Dropped
	}
	if drops == 0 {
		t.Fatal("no dropouts at p=0.5")
	}
}

func TestFacadeFedCAActsAfterAnchor(t *testing.T) {
	o := tinyOpts()
	o.FedCA.K = o.LocalIters
	o.FedCA.ProfilePeriod = 3
	f, err := fedca.New(o)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(4)
	st, ok := f.FedCAStats()
	if !ok {
		t.Fatal("stats missing")
	}
	if st.AnchorRounds == 0 {
		t.Fatal("no anchor rounds recorded")
	}
}

func TestFacadeChaosSpec(t *testing.T) {
	o := tinyOpts()
	o.Scheme = "fedavg"
	o.Chaos = "drop=0.3,slow=0.4,degrade=0.3,outage=0.2,xfail=0.2,corrupt=0.3"
	o.MaxDeltaNorm = 1e6
	f, err := fedca.New(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		f.RunRound()
	}
	st := f.DegradationStats()
	if st.Rounds != 4 {
		t.Fatalf("stats.Rounds = %d, want 4", st.Rounds)
	}
	if st.DroppedRounds == 0 && st.Quarantined == 0 && st.LinkRetries == 0 {
		t.Fatalf("chaos spec injected nothing observable: %+v", st)
	}
	// Replay with the same seed: the facade must reproduce the run exactly.
	g, err := fedca.New(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		g.RunRound()
	}
	if f.DegradationStats() != g.DegradationStats() {
		t.Fatalf("chaos runs diverged: %+v vs %+v", f.DegradationStats(), g.DegradationStats())
	}
	if f.Accuracy() != g.Accuracy() {
		t.Fatalf("accuracy diverged: %v vs %v", f.Accuracy(), g.Accuracy())
	}
}

func TestFacadeChaosSpecErrors(t *testing.T) {
	for _, spec := range []string{"drop=2", "bogus=1", "drop"} {
		o := tinyOpts()
		o.Chaos = spec
		if _, err := fedca.New(o); err == nil {
			t.Fatalf("spec %q must be rejected", spec)
		}
	}
}

func TestFacadeMinQuorumSkip(t *testing.T) {
	o := tinyOpts()
	o.Scheme = "fedavg"
	o.MinQuorum = o.Clients + 1 // unreachable: every round skips
	f, err := fedca.New(o)
	if err != nil {
		t.Fatal(err)
	}
	r := f.RunRound()
	if !r.Skipped {
		t.Fatal("below-quorum round must surface Skipped through the facade")
	}
	if f.DegradationStats().SkippedRounds != 1 {
		t.Fatalf("stats = %+v, want 1 skipped round", f.DegradationStats())
	}
}
