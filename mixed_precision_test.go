package fedca_test

import (
	"math"
	"testing"

	fedca "fedca"
	"fedca/internal/cputok"
)

func f32Opts() fedca.Options {
	o := tinyOpts()
	o.DType = "f32"
	return o
}

// TestFacadeFloat32Runs pins that the mixed-precision path is reachable from
// the public facade and deterministic: two identical f32 runs produce
// identical rounds.
func TestFacadeFloat32Runs(t *testing.T) {
	run := func() []fedca.Round {
		f, err := fedca.New(f32Opts())
		if err != nil {
			t.Fatal(err)
		}
		return f.Run(3)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("f32 round %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFacadeFloat32WorkerInvariance pins the f32 determinism contract at the
// round level: the result is bit-identical at any CPU-token cap. Every f32
// reduction in the math floor (GEMM row blocks, conv per-sample gradient
// buffers) is ordered independently of worker count, so narrowing the dtype
// must not reintroduce scheduling-dependent float accumulation.
func TestFacadeFloat32WorkerInvariance(t *testing.T) {
	old := cputok.Default().Setting()
	defer cputok.Default().SetCap(old)

	var base []fedca.Round
	for _, cap := range []int{1, 2, 4} {
		cputok.Default().SetCap(cap)
		f, err := fedca.New(f32Opts())
		if err != nil {
			t.Fatal(err)
		}
		rs := f.Run(3)
		if base == nil {
			base = rs
			continue
		}
		for i := range rs {
			if rs[i].Accuracy != base[i].Accuracy || rs[i].Collected != base[i].Collected {
				t.Fatalf("cap %d round %d = %+v, want %+v", cap, i, rs[i], base[i])
			}
		}
	}
}

// TestFacadeFloat32TracksFloat64 pins the documented mixed-precision
// tolerance: f32 training follows a different arithmetic trajectory than f64,
// but at the fig7-tiny workload the accuracy curves must agree within 0.05
// absolute at every round (measured: identical at 128 test samples — the
// divergence is far below the accuracy quantum).
func TestFacadeFloat32TracksFloat64(t *testing.T) {
	run := func(dt string) []fedca.Round {
		o := tinyOpts()
		o.DType = dt
		f, err := fedca.New(o)
		if err != nil {
			t.Fatal(err)
		}
		return f.Run(5)
	}
	a, b := run("f64"), run("f32")
	for i := range a {
		if d := math.Abs(a[i].Accuracy - b[i].Accuracy); d > 0.05 {
			t.Fatalf("round %d: f64 acc %.4f vs f32 acc %.4f (diff %.4f > 0.05)", i, a[i].Accuracy, b[i].Accuracy, d)
		}
	}
	last := len(a) - 1
	if a[last].Accuracy < 0.5 || b[last].Accuracy < 0.5 {
		t.Fatalf("training did not converge: f64 %.4f, f32 %.4f", a[last].Accuracy, b[last].Accuracy)
	}
}

// TestFacadeFloat32AllSchemes runs one f32 round under every aggregation
// scheme: FedProx exercises the f32 proximal gradient modifier, the rest the
// promoted no-op controller.
func TestFacadeFloat32AllSchemes(t *testing.T) {
	for _, scheme := range []string{"fedavg", "fedprox", "fedada", "fedca", "oort", "safa"} {
		o := f32Opts()
		o.Scheme = scheme
		f, err := fedca.New(o)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if r := f.RunRound(); r.Collected == 0 {
			t.Fatalf("%s: empty f32 round", scheme)
		}
	}
}

// TestFacadeDTypeErrors pins rejection of unknown dtypes at construction.
func TestFacadeDTypeErrors(t *testing.T) {
	o := tinyOpts()
	o.DType = "f16"
	if _, err := fedca.New(o); err == nil {
		t.Fatal("unknown dtype must error")
	}
}
