package fedca_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandSmoke builds every binary and exercises the happy paths:
// a tiny simulation with a JSONL log, the experiment list, and the plotter
// reading the log back. Guarded by -short.
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"fedca-sim", "fedca-bench", "fedca-plot", "fedca-profile"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}

	logPath := filepath.Join(dir, "run.jsonl")
	sim := exec.Command(bins["fedca-sim"], "-model", "cnn", "-scheme", "fedavg",
		"-scale", "tiny", "-clients", "2", "-rounds", "2", "-log", logPath)
	out, err := sim.CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-sim: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "round") {
		t.Fatalf("fedca-sim output unexpected:\n%s", out)
	}

	list, err := exec.Command(bins["fedca-bench"], "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-bench -list: %v\n%s", err, list)
	}
	for _, id := range []string{"table1", "fig7", "ext-compress"} {
		if !strings.Contains(string(list), id) {
			t.Fatalf("fedca-bench -list missing %s:\n%s", id, list)
		}
	}

	ovh, err := exec.Command(bins["fedca-bench"], "-exp", "ovh", "-scale", "tiny").CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-bench ovh: %v\n%s", err, ovh)
	}
	if !strings.Contains(string(ovh), "overhead") {
		t.Fatalf("ovh output unexpected:\n%s", ovh)
	}

	plot, err := exec.Command(bins["fedca-plot"], logPath).CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-plot: %v\n%s", err, plot)
	}
	if !strings.Contains(string(plot), "fedavg") {
		t.Fatalf("plot missing legend:\n%s", plot)
	}

	// Error paths exit non-zero.
	if err := exec.Command(bins["fedca-bench"], "-exp", "nope").Run(); err == nil {
		t.Fatal("fedca-bench with unknown experiment must fail")
	}
	if err := exec.Command(bins["fedca-sim"], "-scheme", "nope", "-scale", "tiny").Run(); err == nil {
		t.Fatal("fedca-sim with unknown scheme must fail")
	}
	if err := exec.Command(bins["fedca-plot"]).Run(); err == nil {
		t.Fatal("fedca-plot without args must fail")
	}
}
