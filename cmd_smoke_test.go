package fedca_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fedca/internal/runlog"
)

// TestCommandSmoke builds every binary and exercises the happy paths:
// a tiny simulation with a JSONL log, the experiment list, and the plotter
// reading the log back. Guarded by -short.
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"fedca-sim", "fedca-bench", "fedca-plot", "fedca-profile"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}

	logPath := filepath.Join(dir, "run.jsonl")
	sim := exec.Command(bins["fedca-sim"], "-model", "cnn", "-scheme", "fedavg",
		"-scale", "tiny", "-clients", "2", "-rounds", "2", "-log", logPath)
	out, err := sim.CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-sim: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "round") {
		t.Fatalf("fedca-sim output unexpected:\n%s", out)
	}

	// A degraded run with telemetry: the trace must come out as structurally
	// valid Chrome trace-event JSON and the log header must carry the full
	// reproduction recipe (chaos spec, quorum, norm bound, compressor).
	tracePath := filepath.Join(dir, "run-trace.json")
	chaosLog := filepath.Join(dir, "chaos.jsonl")
	sim = exec.Command(bins["fedca-sim"], "-model", "cnn", "-scheme", "fedca",
		"-scale", "tiny", "-clients", "2", "-rounds", "2",
		"-chaos", "drop=0.2,slow=0.3", "-quorum", "1", "-maxnorm", "1e6",
		"-compress", "qsgd7", "-log", chaosLog, "-trace", tracePath)
	if out, err := sim.CombinedOutput(); err != nil {
		t.Fatalf("fedca-sim -trace: %v\n%s", err, out)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(traceData, &tr); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 || tr.DisplayTimeUnit != "ms" {
		t.Fatalf("trace structurally wrong: %d events, unit %q", len(tr.TraceEvents), tr.DisplayTimeUnit)
	}
	sawRound, sawClientTrack := false, false
	for i, e := range tr.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" && e.Ph != "M" {
			t.Fatalf("trace event %d: unexpected phase %q", i, e.Ph)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Fatalf("trace event %d: negative ts/dur: %+v", i, e)
		}
		sawRound = sawRound || e.Name == "round"
		sawClientTrack = sawClientTrack || e.TID > 0
	}
	if !sawRound || !sawClientTrack {
		t.Fatalf("trace missing round span (%v) or client tracks (%v)", sawRound, sawClientTrack)
	}
	run, err := runlog.Open(chaosLog)
	if err != nil {
		t.Fatal(err)
	}
	if run.Header.Chaos == "" || run.Header.Quorum != 1 ||
		run.Header.MaxNorm != 1e6 || run.Header.Compress != "qsgd7" {
		t.Fatalf("log header missing reproduction fields: %+v", run.Header)
	}

	list, err := exec.Command(bins["fedca-bench"], "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-bench -list: %v\n%s", err, list)
	}
	for _, id := range []string{"table1", "fig7", "ext-compress"} {
		if !strings.Contains(string(list), id) {
			t.Fatalf("fedca-bench -list missing %s:\n%s", id, list)
		}
	}

	ovh, err := exec.Command(bins["fedca-bench"], "-exp", "ovh", "-scale", "tiny").CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-bench ovh: %v\n%s", err, ovh)
	}
	if !strings.Contains(string(ovh), "overhead") {
		t.Fatalf("ovh output unexpected:\n%s", ovh)
	}

	plot, err := exec.Command(bins["fedca-plot"], logPath).CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-plot: %v\n%s", err, plot)
	}
	if !strings.Contains(string(plot), "fedavg") {
		t.Fatalf("plot missing legend:\n%s", plot)
	}

	// Error paths exit non-zero.
	if err := exec.Command(bins["fedca-bench"], "-exp", "nope").Run(); err == nil {
		t.Fatal("fedca-bench with unknown experiment must fail")
	}
	if err := exec.Command(bins["fedca-sim"], "-scheme", "nope", "-scale", "tiny").Run(); err == nil {
		t.Fatal("fedca-sim with unknown scheme must fail")
	}
	if err := exec.Command(bins["fedca-plot"]).Run(); err == nil {
		t.Fatal("fedca-plot without args must fail")
	}
}
