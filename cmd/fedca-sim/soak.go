// Soak mode: fedca-sim -soak drives the long-horizon production soak harness
// (internal/soak) — thousands of rounds under a rotating, seeded chaos
// schedule with invariant monitors — and fedca-sim -soak-repro replays one
// phase from a soak report, verifying the recorded fingerprint.
package main

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"fedca"
	"fedca/internal/runlog"
	"fedca/internal/soak"
)

// soakCLI carries the flag values the soak mode consumes.
type soakCLI struct {
	spec     string
	rounds   int
	seed     uint64
	report   string
	check    int
	recheck  int
	model    string
	scheme   string
	clients  int
	logPath    string
	httpAddr   string
	eventsPath string
}

// runSoak executes the soak and exits: 0 when every invariant held, 1 on
// monitor violations (the report names them), 2 on setup errors.
func runSoak(cli soakCLI) {
	base := soak.DefaultBase()
	// The workload flags keep their usual meaning in soak mode; phases may
	// still override any of them in the schedule spec.
	base.Model = cli.model
	base.Scheme = cli.scheme
	if cli.clients > 0 {
		base.Clients = cli.clients
	}
	cfg := soak.Config{
		Schedule:     cli.spec,
		Rounds:       cli.rounds,
		Seed:         cli.seed,
		Base:         base,
		CheckEvery:   cli.check,
		RecheckEvery: cli.recheck,
	}
	if cli.httpAddr != "" {
		cfg.Telemetry = fedca.NewTelemetry()
	}
	// The flight recorder is always on in soak mode: violations carry their
	// causal event window in the report, and /events serves it live.
	cfg.Journal = fedca.NewJournal(0)
	if cli.eventsPath != "" {
		f, err := os.Create(cli.eventsPath)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedca-sim: events:", err)
			}
		}()
		cfg.EventWriter = f
	}
	if cli.logPath != "" {
		w, err := runlog.Create(cli.logPath)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := w.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedca-sim: runlog:", err)
			}
		}()
		cfg.Log = w
	}
	r, err := soak.New(cfg)
	if err != nil {
		fail(err)
	}
	if cli.httpAddr != "" {
		mux := r.NewMux()
		go func() {
			if err := http.ListenAndServe(cli.httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "fedca-sim: http:", err)
			}
		}()
		fmt.Printf("telemetry: serving /metrics, /status, /events, /clients and /debug/pprof on %s\n", cli.httpAddr)
	}
	schedule := cfg.Schedule
	if schedule == "" {
		schedule = soak.DefaultSchedule
	}
	fmt.Printf("soak: %d rounds, seed %d, check every %d, recheck every %d phases\n",
		cli.rounds, cli.seed, cli.check, cli.recheck)
	fmt.Printf("soak: schedule %s\n", schedule)

	rep, err := r.Run()
	if err != nil {
		fail(err)
	}
	for _, p := range rep.Phases {
		fmt.Printf("soak: phase %3d cycle %2d %-12s rounds %4d-%-4d acc %.4f skipped %d quarantined %d retries %d\n",
			p.Index, p.Cycle, p.Name, p.StartRound, p.StartRound+p.Rounds-1,
			p.FinalAccuracy, p.SkippedRounds, p.Quarantined, p.LinkRetries)
	}
	fmt.Printf("soak: rechecks computed=%d dedup-joins=%d; tokens max-inflight=%d cap=%d\n",
		rep.RecheckStats.Computed, rep.RecheckStats.DedupWaits, rep.MaxInflight, rep.TokenCap)
	if cli.report != "" {
		if err := soak.WriteReport(cli.report, rep); err != nil {
			fail(err)
		}
		fmt.Printf("soak: report written to %s\n", cli.report)
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "soak: FAIL — %d violation(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  [%s] phase %d (%s) round %d: %s\n", v.Monitor, v.PhaseIndex, v.Phase, v.Round, v.Detail)
			if n := len(v.Events); n > 0 {
				fmt.Fprintf(os.Stderr, "    context: %d journal events captured (see the report's events field)\n", n)
			}
			fmt.Fprintf(os.Stderr, "    reproduce: fedca-sim -soak-repro REPORT.json:%d   (or soak.RunPhase with seed %d)\n", v.PhaseIndex, v.Seed)
		}
		os.Exit(1)
	}
	fmt.Printf("soak: PASS — %d rounds, %d phases, 0 violations\n", rep.Rounds, len(rep.Phases))
}

// runSoakRepro replays one phase named by "REPORT.json:PHASE_INDEX" and
// verifies the re-run reproduces the recorded fingerprint bit-for-bit.
// Exits 0 on an identical reproduction, 1 on a fingerprint mismatch, 2 on
// setup errors (unreadable report, bad index).
func runSoakRepro(arg string) {
	path, idxStr, ok := strings.Cut(arg, ":")
	if !ok {
		fail(fmt.Errorf("-soak-repro wants REPORT.json:PHASE_INDEX, got %q", arg))
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		fail(fmt.Errorf("-soak-repro phase index %q: %v", idxStr, err))
	}
	rep, err := soak.ReadReport(path)
	if err != nil {
		fail(err)
	}
	var phase *soak.PhaseResult
	for i := range rep.Phases {
		if rep.Phases[i].Index == idx {
			phase = &rep.Phases[i]
			break
		}
	}
	if phase == nil {
		fail(fmt.Errorf("report %s has no phase with index %d (%d phases)", path, idx, len(rep.Phases)))
	}
	fmt.Printf("repro: phase %d (%s), seed %d\n", phase.Index, phase.Name, phase.Seed)
	fmt.Printf("repro: spec %s\n", phase.Spec)
	got, err := soak.RunPhase(phase.Spec, phase.Seed, nil)
	if err != nil {
		fail(err)
	}
	if got.Fingerprint != phase.Fingerprint {
		fmt.Fprintf(os.Stderr, "repro: FAIL — fingerprint %s != recorded %s\n", got.Fingerprint, phase.Fingerprint)
		os.Exit(1)
	}
	fmt.Printf("repro: PASS — fingerprint %s reproduced bit-identically (params %s)\n",
		got.Fingerprint, got.ParamsChecksum)
}
