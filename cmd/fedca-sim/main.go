// fedca-sim runs one federated-learning simulation — one workload under one
// scheme — and prints a per-round log (virtual time, accuracy, iterations,
// eager-transmission activity).
//
// Usage:
//
//	fedca-sim -model cnn -scheme fedca -clients 32 -rounds 50
//	fedca-sim -model wrn -scheme fedavg -scale tiny -seed 7
//	fedca-sim -scheme fedavg -compress qsgd7 -log run.jsonl
//	fedca-sim -scheme fedca -http :8080 -trace run-trace.json
//
// With -http the run serves live introspection while it executes: /metrics
// (Prometheus text format), /status (current round, runner and scheme stats
// as JSON) and /debug/pprof. With -trace it writes the whole run as Chrome
// trace-event JSON keyed on virtual sim time — open it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"fedca/internal/baseline"
	"fedca/internal/chaos"
	"fedca/internal/compress"
	"fedca/internal/core"
	"fedca/internal/expcfg"
	"fedca/internal/experiments"
	"fedca/internal/fl"
	"fedca/internal/rng"
	"fedca/internal/runlog"
	"fedca/internal/telemetry"
)

func main() {
	model := flag.String("model", "cnn", "workload: cnn | lstm | wrn")
	scheme := flag.String("scheme", "fedca", "scheme: fedavg | fedprox | fedada | fedca | fedca-v1 | fedca-v2 | oort | safa")
	scaleName := flag.String("scale", "small", "experiment scale: tiny | small | full")
	clients := flag.Int("clients", 0, "override client count")
	fleet := flag.Int("fleet", 0, "virtualize the population at this size: only each round's cohort is materialized (O(cohort) memory), client state derives from (seed, id)")
	participation := flag.Float64("participation", 0, "fraction of the virtual fleet sampled into each round's cohort (requires -fleet; 0 or 1 = everyone)")
	aggFrac := flag.Float64("aggfrac", 0, "override the workload's partial-aggregation cut in (0,1]; 1.0 enables the streaming online fold")
	rounds := flag.Int("rounds", 0, "override round count")
	seed := flag.Uint64("seed", 42, "master seed")
	dtype := flag.String("dtype", "f64", "client training precision: f64 (bit-reproducible default) | f32 (float32 workers; master weights and aggregation stay float64)")
	compressSpec := flag.String("compress", "none", "upload compressor: none | qsgd<levels> | topk<percent>")
	dropout := flag.Float64("dropout", 0, "per-round client dropout probability")
	chaosSpec := flag.String("chaos", "none", `fault-injection spec, e.g. "drop=0.1,slow=0.3,degrade=0.2,outage=0.05,xfail=0.02,corrupt=0.01" (deterministic per seed)`)
	minQuorum := flag.Int("quorum", 0, "minimum valid updates to aggregate a round (0 = 1); thinner rounds are skipped, not fatal")
	maxNorm := flag.Float64("maxnorm", 0, "quarantine updates whose L2 norm exceeds this (0 = no bound)")
	logPath := flag.String("log", "", "write a JSON-lines run log to this path")
	eventsPath := flag.String("events", "", "stream the flight-recorder journal to this path as JSON lines")
	httpAddr := flag.String("http", "", "serve live introspection on this address (/metrics, /status, /events, /clients, /healthz, /debug/pprof)")
	tracePath := flag.String("trace", "", "write the run as Chrome trace-event JSON to this path (open in Perfetto)")
	soakMode := flag.Bool("soak", false, "run the long-horizon soak harness instead of a single simulation")
	soakSpec := flag.String("soak-spec", "", "soak schedule spec (phases separated by '|'; empty = the built-in rotating chaos schedule)")
	soakRounds := flag.Int("soak-rounds", 2000, "total soak round budget across all phases")
	soakReport := flag.String("soak-report", "", "write the soak's JSON report to this path")
	soakCheck := flag.Int("soak-check", 10, "evaluate invariant monitors every N rounds")
	soakRecheck := flag.Int("soak-recheck", 4, "serially re-run every Nth phase and assert a bit-identical fingerprint (-1 disables)")
	soakRepro := flag.String("soak-repro", "", "reproduce one phase from a soak report: REPORT.json:PHASE_INDEX")
	flag.Parse()

	if *soakRepro != "" {
		runSoakRepro(*soakRepro)
		return
	}
	if *soakMode {
		runSoak(soakCLI{
			spec: *soakSpec, rounds: *soakRounds, seed: *seed,
			report: *soakReport, check: *soakCheck, recheck: *soakRecheck,
			model: *model, scheme: *scheme, clients: *clients,
			logPath: *logPath, httpAddr: *httpAddr, eventsPath: *eventsPath,
		})
		return
	}

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fail(err)
	}
	if *clients > 0 {
		scale.Clients = *clients
	}
	if *rounds > 0 {
		scale.Rounds = *rounds
	}
	w, err := scale.Workload(*model)
	if err != nil {
		fail(err)
	}
	w.FL.DType = *dtype
	comp, err := compress.ByName(*compressSpec)
	if err != nil {
		fail(err)
	}
	if _, isNone := comp.(compress.None); !isNone {
		w.FL.Compressor = comp
	}
	w.FL.DropoutProb = *dropout
	ccfg, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		fail(err)
	}
	if ccfg.Enabled() {
		eng, err := chaos.NewEngine(ccfg, rng.New(*seed).Fork("chaos-engine").Uint64())
		if err != nil {
			fail(err)
		}
		w.FL.Chaos = eng
	}
	w.FL.MinQuorum = *minQuorum
	w.FL.MaxDeltaNorm = *maxNorm
	if *aggFrac > 0 {
		w.FL.AggregateFraction = *aggFrac
	}
	if *participation > 0 && *fleet <= 0 {
		fail(fmt.Errorf("-participation requires -fleet"))
	}
	w.FL.Participation = *participation

	// Telemetry: one sink feeds both the HTTP surface and the trace export.
	// It is deterministically inert, so attaching it never changes the run.
	var sink *telemetry.Sink
	if *httpAddr != "" || *tracePath != "" {
		sink = telemetry.New()
		w.FL.Telemetry = sink
	}
	// Flight recorder: feeds /events and /clients, and streams to -events.
	// Like the sink it is observational only.
	var journal *telemetry.Journal
	if *httpAddr != "" || *eventsPath != "" {
		journal = telemetry.NewJournal(0)
		w.FL.Journal = journal
	}

	var sch fl.Scheme
	var fedca *core.Scheme
	switch *scheme {
	case "fedavg":
		sch = baseline.FedAvg{}
	case "fedprox":
		sch = baseline.FedProx{Mu: 0.01}
	case "fedada":
		sch = baseline.FedAda{K: w.FL.LocalIters, Tradeoff: 0.5}
	case "oort":
		sch = baseline.NewOort(w.FL.LocalIters, 0.5, rng.New(*seed).Fork("oort"))
	case "safa":
		sch = baseline.NewSAFA(0.5)
	case "fedca", "fedca-v1", "fedca-v2":
		var opt core.Options
		switch *scheme {
		case "fedca":
			opt = scale.FedCAOptions()
		case "fedca-v1":
			opt = core.V1Options(w.FL.LocalIters)
		case "fedca-v2":
			opt = core.V2Options(w.FL.LocalIters)
		}
		fedca = core.NewScheme(opt, rng.New(*seed).Fork("scheme"))
		fedca.SetTelemetry(sink)
		fedca.SetJournal(journal)
		sch = fedca
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}

	var runner *fl.Runner
	if *fleet > 0 {
		ftb, err := expcfg.BuildFleet(w, *fleet, 0, scale.TraceConfig(), *seed)
		if err != nil {
			fail(err)
		}
		runner, err = ftb.NewRunner(sch)
		if err != nil {
			fail(err)
		}
		fmt.Printf("fleet: %d virtual clients, participation=%g (cohort ≈ %d), lazy cohort materialization\n",
			*fleet, *participation, cohortOf(*fleet, *participation))
	} else {
		runner, err = expcfg.Build(w, scale.Clients, scale.TraceConfig(), *seed).NewRunner(sch)
		if err != nil {
			fail(err)
		}
	}
	if *httpAddr != "" {
		mux := telemetry.NewMux(sink, journal, statusFunc(runner, fedca, sink))
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "fedca-sim: http:", err)
			}
		}()
		fmt.Printf("telemetry: serving /metrics, /status, /events, /clients and /debug/pprof on %s\n", *httpAddr)
	}
	var eventsFile *os.File
	var eventsSeq uint64
	if *eventsPath != "" {
		eventsFile, err = os.Create(*eventsPath)
		if err != nil {
			fail(err)
		}
		defer eventsFile.Close()
	}
	var logw *runlog.Writer
	if *logPath != "" {
		logw, err = runlog.Create(*logPath)
		if err != nil {
			fail(err)
		}
		defer logw.Close()
		hdr := runlog.Header{
			Model: *model, Scheme: *scheme, Clients: scale.Clients,
			K: w.FL.LocalIters, Seed: *seed, Alpha: w.Alpha,
			Quorum: *minQuorum, MaxNorm: *maxNorm,
		}
		if *dtype != "" && *dtype != "f64" {
			hdr.Dtype = *dtype
		}
		if ccfg.Enabled() {
			hdr.Chaos = ccfg.Spec()
		}
		if _, isNone := comp.(compress.None); !isNone {
			hdr.Compress = comp.Name()
		}
		if err := logw.WriteHeader(hdr); err != nil {
			fail(err)
		}
	}
	popClients := scale.Clients
	if *fleet > 0 {
		popClients = *fleet
	}
	fmt.Printf("model=%s scheme=%s clients=%d K=%d rounds=%d seed=%d compress=%s\n",
		*model, *scheme, popClients, w.FL.LocalIters, scale.Rounds, *seed, comp.Name())
	fmt.Printf("%5s %12s %10s %8s %8s %7s %7s\n", "round", "vtime(s)", "dur(s)", "acc", "iters", "eager", "retr")
	for i := 0; i < scale.Rounds; i++ {
		r := runner.RunRound()
		note := ""
		if r.Skipped {
			note = " SKIPPED"
		}
		if r.Quarantined > 0 {
			note += fmt.Sprintf(" quarantined=%d", r.Quarantined)
		}
		fmt.Printf("%5d %12.1f %10.1f %8.4f %8.1f %7.1f %7.1f%s\n",
			r.Round, r.End, r.Duration(), r.Accuracy, r.MeanIterations, r.MeanEagerSent, r.MeanRetrans, note)
		if logw != nil {
			if err := logw.WriteRound(r); err != nil {
				fail(err)
			}
		}
		// Stream the journal incrementally: draining once per round keeps the
		// on-disk record complete even though the ring evicts old events.
		if eventsFile != nil {
			eventsSeq = writeEvents(eventsFile, journal.Since(eventsSeq), eventsSeq)
		}
	}
	if eventsFile != nil {
		fmt.Printf("events: wrote the flight-recorder journal to %s (%d events)\n", *eventsPath, eventsSeq)
	}
	if fedca != nil {
		st := fedca.Stats()
		fmt.Printf("fedca: early-stops=%d full-rounds=%d eager=%d retransmissions=%d anchors=%d\n",
			len(st.EarlyStopIters), st.FullRounds, st.EagerSentTotal, st.RetransmitsTotal, st.AnchorRounds)
	}
	if ccfg.Enabled() || *minQuorum > 0 || *maxNorm > 0 {
		st := runner.Stats()
		fmt.Printf("degradation: skipped-rounds=%d quarantined=%d dropped-client-rounds=%d link-retries=%d\n",
			st.SkippedRounds, st.Quarantined, st.DroppedRounds, st.LinkRetries)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := sink.Tracer().WriteChromeTrace(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace: wrote %d events to %s (open in https://ui.perfetto.dev)\n", sink.Tracer().Len(), *tracePath)
	}
}

// statusFunc builds the /status snapshot closure. Everything it touches is
// safe to read while RunRound executes on the main goroutine: runner stats
// and scheme stats snapshot under their own locks, and the sink gauges are
// atomic.
func statusFunc(runner *fl.Runner, fedca *core.Scheme, sink *telemetry.Sink) func() any {
	type status struct {
		Round       float64           `json:"round"`
		VirtualTime float64           `json:"virtual_time_seconds"`
		Accuracy    float64           `json:"accuracy"`
		Runner      fl.RunnerStats    `json:"runner"`
		FedCA       *core.SchemeStats `json:"fedca,omitempty"`
	}
	return func() any {
		st := status{
			Round:       sink.Round.Value(),
			VirtualTime: sink.VirtualTime.Value(),
			Accuracy:    sink.Accuracy.Value(),
			Runner:      runner.Stats(),
		}
		if fedca != nil {
			s := fedca.Stats()
			st.FedCA = &s
		}
		return st
	}
}

// writeEvents appends events as JSON lines and returns the last sequence
// number written (or since, when there was nothing new).
func writeEvents(w io.Writer, events []telemetry.Event, since uint64) uint64 {
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			continue
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			fail(err)
		}
		since = e.Seq
	}
	return since
}

// cohortOf mirrors the runner's expected cohort size for the banner.
func cohortOf(fleet int, participation float64) int {
	if participation <= 0 || participation >= 1 {
		return fleet
	}
	k := int(participation*float64(fleet) + 0.5)
	if k < 1 {
		k = 1
	}
	return k
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fedca-sim:", err)
	os.Exit(2)
}
