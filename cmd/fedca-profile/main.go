// fedca-profile trains a workload under plain FedAvg and prints the
// statistical-progress curves (the paper's Figs. 2–5 data) for chosen rounds
// and clients: the model-level curve, per-layer curves, and the periodically
// sampled approximations.
//
// Usage:
//
//	fedca-profile -model cnn -scale tiny
//	fedca-profile -model lstm -layers -series
package main

import (
	"flag"
	"fmt"
	"os"

	"fedca/internal/experiments"
	"fedca/internal/report"
)

func main() {
	model := flag.String("model", "cnn", "workload: cnn | lstm | wrn")
	scaleName := flag.String("scale", "tiny", "experiment scale: tiny | small | full")
	seed := flag.Uint64("seed", 42, "master seed")
	layers := flag.Bool("layers", false, "print per-layer curves")
	sampled := flag.Bool("sampled", false, "print the sampled-profiling curves next to full ones")
	series := flag.Bool("series", false, "print raw series values instead of sparklines")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fail(err)
	}
	w, err := scale.Workload(*model)
	if err != nil {
		fail(err)
	}
	cd := experiments.CollectCurvesFor(w, scale, *seed)
	fmt.Printf("workload=%s K=%d layers=%d (probe rounds %d and %d, clients 0/1)\n",
		*model, cd.K, len(cd.LayerNames), scale.EarlyRound, scale.LateRound)

	show := func(name string, curve []float64) {
		if *series {
			xs := make([]float64, len(curve))
			for i := range xs {
				xs[i] = float64(i + 1)
			}
			fmt.Print(report.Series(name, xs, curve, 0))
		} else {
			fmt.Printf("%-52s %s\n", name, report.Sparkline(curve))
		}
	}
	for _, stage := range []struct {
		label string
		round int
	}{{"early", scale.EarlyRound}, {"late", scale.LateRound}} {
		for _, client := range []int{0, 1} {
			pc := cd.Probe(stage.round, client)
			if pc == nil {
				continue
			}
			show(fmt.Sprintf("model/%s/round%d/client%d", stage.label, stage.round, client), pc.Model)
			if *layers {
				for l, name := range cd.LayerNames {
					show(fmt.Sprintf("layer/%s/c%d/%s", stage.label, client, name), pc.Layer[l])
					if *sampled {
						show(fmt.Sprintf("layer/%s/c%d/%s (sampled)", stage.label, client, name), pc.Sampled[l])
					}
				}
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fedca-profile:", err)
	os.Exit(2)
}
