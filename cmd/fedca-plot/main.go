// fedca-plot renders one or more JSON-lines run logs (written by
// fedca-sim -log) as an ASCII time-to-accuracy chart, so scheme comparisons
// can be eyeballed without leaving the terminal.
//
// Usage:
//
//	fedca-sim -scheme fedavg -log avg.jsonl
//	fedca-sim -scheme fedca  -log ca.jsonl
//	fedca-plot avg.jsonl ca.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"fedca/internal/report"
	"fedca/internal/runlog"
)

func main() {
	width := flag.Int("width", 72, "chart width in characters")
	height := flag.Int("height", 18, "chart height in characters")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fedca-plot [-width N] [-height N] <run.jsonl> [more.jsonl ...]")
		os.Exit(2)
	}
	var series []report.PlotSeries
	for _, path := range flag.Args() {
		run, err := runlog.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedca-plot:", err)
			os.Exit(2)
		}
		ts, as := run.AccuracyCurve()
		name := run.Header.Scheme
		if name == "" {
			name = path
		} else {
			name = fmt.Sprintf("%s (%s, %d clients)", name, run.Header.Model, run.Header.Clients)
		}
		series = append(series, report.PlotSeries{Name: name, Xs: ts, Ys: as})
	}
	fmt.Print(report.Plot("time-to-accuracy (virtual seconds)", series, *width, *height))
}
