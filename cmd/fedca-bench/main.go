// fedca-bench regenerates the FedCA paper's evaluation artifacts (Table 1,
// Figs. 2–5, 7–10, Sec. 5.5 overheads) on the simulated testbed.
//
// Usage:
//
//	fedca-bench -exp table1            # one experiment at the default scale
//	fedca-bench -exp all -scale tiny   # everything, smallest instance
//	fedca-bench -exp fig7 -scale full -seed 7 -series
//
// Scales: tiny (minutes), small (default), full (paper-sized: 128 clients,
// K = 125 — expect hours of CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"fedca/internal/experiments"
	"fedca/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig2..fig10b, table1, ovh) or 'all'")
	scaleName := flag.String("scale", "small", "experiment scale: tiny | small | full")
	seed := flag.Uint64("seed", 42, "master seed")
	series := flag.Bool("series", false, "also print full data series for plotting")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("=== %s (scale=%s seed=%d, %s) ===\n", id, scale.Name, *seed, time.Since(start).Round(time.Millisecond))
		fmt.Println(res.Text)
		if *series {
			names := make([]string, 0, len(res.Series))
			for n := range res.Series {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				ys := res.Series[n]
				xs := make([]float64, len(ys))
				for i := range xs {
					xs[i] = float64(i + 1)
				}
				fmt.Print(report.Series(id+"/"+n, xs, ys, 0))
			}
		}
	}
}
