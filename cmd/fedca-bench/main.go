// fedca-bench regenerates the FedCA paper's evaluation artifacts (Table 1,
// Figs. 2–5, 7–10, Sec. 5.5 overheads) on the simulated testbed.
//
// Usage:
//
//	fedca-bench -exp table1            # one experiment at the default scale
//	fedca-bench -exp all -scale tiny   # everything, smallest instance
//	fedca-bench -exp fig7 -scale full -seed 7 -series
//	fedca-bench -exp all -cache ~/.cache/fedca-cells   # warm across runs
//	fedca-bench -exp fig7 -scale tiny -dtype f32       # float32 client compute
//
// Scales: tiny (minutes), small (default), full (paper-sized: 128 clients,
// K = 125 — expect hours of CPU).
//
// Experiments execute through the cell executor (DESIGN.md §10): the
// training runs behind each figure are deduplicated across figures, computed
// in parallel up to -parallel concurrent cells, and — with -cache — reused
// across invocations from a content-addressed on-disk result cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"fedca/internal/execpool"
	"fedca/internal/experiments"
	"fedca/internal/report"
	"fedca/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig2..fig10b, table1, ovh) or 'all'")
	scaleName := flag.String("scale", "small", "experiment scale: tiny | small | full")
	seed := flag.Uint64("seed", 42, "master seed")
	series := flag.Bool("series", false, "also print full data series for plotting")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", experiments.DefaultWorkers(), "max concurrently computing experiment cells (1 = serial)")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (empty disables)")
	dtype := flag.String("dtype", "f64", "client training precision: f64 (bit-reproducible default) | f32 (float32 workers; master weights and aggregation stay float64)")
	metricsOut := flag.String("metrics-out", "", "write a telemetry JSON snapshot (executor counters included) to this file on exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *dtype {
	case "", "f64":
		// float64 is the zero value of Scale.DType; leave it empty so the
		// cell keys match runs that predate the flag.
	case "f32":
		scale.DType = "f32"
	default:
		fmt.Fprintf(os.Stderr, "fedca-bench: -dtype must be f64 or f32, got %q\n", *dtype)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	experiments.Configure(execpool.Options{
		Workers:  *parallel,
		CacheDir: *cacheDir,
		Metrics:  reg,
	})

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("=== %s (scale=%s seed=%d, %s) ===\n", id, scale.Name, *seed, time.Since(start).Round(time.Millisecond))
		fmt.Println(res.Text)
		if *series {
			names := make([]string, 0, len(res.Series))
			for n := range res.Series {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				ys := res.Series[n]
				xs := make([]float64, len(ys))
				for i := range xs {
					xs[i] = float64(i + 1)
				}
				fmt.Print(report.Series(id+"/"+n, xs, ys, 0))
			}
		}
	}

	st := experiments.ExecStats()
	fmt.Fprintf(os.Stderr, "executor: %d cells computed, %d memory hits, %d disk hits, %d dedup waits\n",
		st.Computed, st.MemHits, st.DiskHits, st.DedupWaits)
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := reg.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
}
