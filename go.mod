module fedca

go 1.24
