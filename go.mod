module fedca

go 1.22
