package fedca_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fedca/internal/runlog"
	"fedca/internal/soak"
	"fedca/internal/telemetry"
)

// TestSoakCommandSmoke exercises fedca-sim's soak mode end to end: a tiny
// soak with report + phase-marked run log, reproduction of a recorded phase
// via -soak-repro, and the exit-code contract (0 pass, 1 violation, 2 setup
// error). Guarded by -short like TestCommandSmoke.
func TestSoakCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fedca-sim")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fedca-sim")
	build.Env = os.Environ()
	if b, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build fedca-sim: %v\n%s", err, b)
	}

	const tiny = ";clients=2;iters=2;batch=4;train=32;test=16"
	reportPath := filepath.Join(dir, "report.json")
	logPath := filepath.Join(dir, "soak.jsonl")
	eventsPath := filepath.Join(dir, "events.jsonl")
	run := exec.Command(bin, "-soak", "-soak-rounds", "6",
		"-soak-spec", "name=calm;rounds=2"+tiny+"|name=storm;rounds=2"+tiny+";chaos=drop=0.3;quorum=1",
		"-soak-check", "2", "-soak-recheck", "1",
		"-soak-report", reportPath, "-log", logPath, "-events", eventsPath, "-seed", "9")
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-sim -soak: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "soak: PASS") {
		t.Fatalf("soak did not pass:\n%s", out)
	}

	// -events streams the flight recorder as JSONL: one valid event per line,
	// strictly ascending seqs, with every round and phase transition present.
	eventsRaw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	roundEvents, phaseEnds := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(eventsRaw)), "\n") {
		var e telemetry.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("events line not valid JSON: %v\n%s", err, line)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("events stream not ascending: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Type {
		case telemetry.EvRound, telemetry.EvRoundSkip:
			roundEvents++
		case telemetry.EvPhaseEnd:
			phaseEnds++
		}
	}
	if roundEvents != 6 || phaseEnds != 3 {
		t.Fatalf("events stream has %d round / %d phase-end events, want 6/3", roundEvents, phaseEnds)
	}

	rep, err := soak.ReadReport(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Rounds != 6 || len(rep.Phases) != 3 {
		t.Fatalf("report unexpected: pass=%v rounds=%d phases=%d", rep.Pass, rep.Rounds, len(rep.Phases))
	}
	if rep.RecheckStats.Computed == 0 {
		t.Fatal("no determinism rechecks ran")
	}
	lg, err := runlog.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Phases) != 3 || len(lg.Rounds) != 6 {
		t.Fatalf("soak log has %d phase markers / %d rounds, want 3/6", len(lg.Phases), len(lg.Rounds))
	}

	// Reproduce phase 1 from the report; the binary verifies the fingerprint.
	repro, err := exec.Command(bin, "-soak-repro", reportPath+":1").CombinedOutput()
	if err != nil {
		t.Fatalf("fedca-sim -soak-repro: %v\n%s", err, repro)
	}
	if !strings.Contains(string(repro), "repro: PASS") {
		t.Fatalf("repro did not verify:\n%s", repro)
	}

	// An injected impossible band must exit 1 and write a failing report
	// whose violation reproduces.
	badReport := filepath.Join(dir, "bad.json")
	bad := exec.Command(bin, "-soak", "-soak-rounds", "2",
		"-soak-spec", "name=impossible;rounds=2"+tiny+";quarband=0.9:1",
		"-soak-recheck", "-1", "-soak-report", badReport, "-seed", "9")
	badOut, err := bad.CombinedOutput()
	if err == nil {
		t.Fatalf("soak with impossible band exited 0:\n%s", badOut)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("violation exit code: %v (want 1)\n%s", err, badOut)
	}
	badRep, err := soak.ReadReport(badReport)
	if err != nil {
		t.Fatal(err)
	}
	if badRep.Pass || len(badRep.Violations) == 0 {
		t.Fatalf("failing report not recorded: %+v", badRep)
	}
	// The violation's report entry must carry its journal event context (the
	// soak CLI always runs with the flight recorder on).
	for i, v := range badRep.Violations {
		if len(v.Events) == 0 {
			t.Fatalf("violation %d carries no journal events: %+v", i, v)
		}
	}
	if !strings.Contains(string(badOut), "journal events captured") {
		t.Fatalf("violation output does not mention captured events:\n%s", badOut)
	}
	repro2, err := exec.Command(bin, "-soak-repro", badReport+":0").CombinedOutput()
	if err != nil {
		t.Fatalf("reproducing flagged phase: %v\n%s", err, repro2)
	}
	if !strings.Contains(string(repro2), "repro: PASS") {
		t.Fatalf("flagged phase did not reproduce bit-identically:\n%s", repro2)
	}

	// Setup errors exit 2.
	if err := exec.Command(bin, "-soak", "-soak-spec", "bogus").Run(); err == nil {
		t.Fatal("bad soak spec must fail")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("bad spec exit code: %v (want 2)", err)
	}
	if err := exec.Command(bin, "-soak-repro", "nope.json:0").Run(); err == nil {
		t.Fatal("missing report must fail")
	}
}
