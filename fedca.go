package fedca

// This file is the public facade of the library: a downstream user assembles
// a simulated federation, picks a scheme by name, runs rounds and reads
// results without touching the internal packages.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"sync"

	"fedca/internal/baseline"
	"fedca/internal/chaos"
	"fedca/internal/compress"
	"fedca/internal/core"
	"fedca/internal/cputok"
	"fedca/internal/expcfg"
	"fedca/internal/fl"
	"fedca/internal/metrics"
	"fedca/internal/rng"
	"fedca/internal/telemetry"
	"fedca/internal/trace"
)

// Telemetry is the live observability sink of a run: a metrics registry
// (Prometheus text format and JSON), a span tracer keyed on virtual sim time
// (Chrome trace-event export for Perfetto), and the building block of the
// HTTP introspection surface (see NewTelemetryMux). Telemetry is
// deterministically inert: attaching a sink never changes a run's results,
// timings or random draws.
type Telemetry = telemetry.Sink

// NewTelemetry builds an enabled telemetry sink to set as Options.Telemetry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Journal is the flight recorder of a run: a fixed-capacity ring buffer of
// structured events (rounds, quarantines, dropouts, anchor aborts, chaos
// impairment windows, cell activity, soak transitions) with monotonic
// sequence numbers, plus a bounded per-client cost-attribution table. Like
// Telemetry it is deterministically inert: attaching a journal never changes
// a run's results, timings or random draws.
type Journal = telemetry.Journal

// Event is one journal entry.
type Event = telemetry.Event

// NewJournal builds a journal retaining the newest capacity events to set as
// Options.Journal (capacity <= 0 selects the default of 4096).
func NewJournal(capacity int) *Journal { return telemetry.NewJournal(capacity) }

// NewTelemetryMux builds an http.Handler serving the sink's live
// introspection surface: /metrics (Prometheus text format, with
// fedca_runtime_* health gauges refreshed on scrape), /metrics.json, /status
// (the federation's Snapshot), /events and /clients (the federation's
// journal, when one is attached), /healthz and /debug/pprof. Safe to serve
// while rounds run.
func NewTelemetryMux(t *Telemetry, f *Federation) http.Handler {
	return telemetry.NewMux(t, f.Journal(), func() any { return f.Snapshot() })
}

// Options configures a Federation. The zero value is not valid; start from
// DefaultOptions.
type Options struct {
	// Model selects the workload: "cnn", "lstm" or "wrn".
	Model string
	// Clients is the number of simulated participants, each fully
	// materialized up front (the classic testbed). Ignored when Fleet is set.
	Clients int
	// Fleet, when positive, virtualizes the client population instead: only
	// each round's cohort is materialized (into pooled slots recycled after
	// the round), so memory scales with the cohort, not the fleet — a
	// million-client federation is a few thousand live clients. Client
	// identity derives from (Seed, clientID), so runs stay bit-reproducible.
	Fleet int
	// Participation is the fraction of the fleet sampled into each round's
	// cohort (virtual fleets only; 0 or 1 = everyone). 1M clients at 0.01
	// participation run 10k-client rounds.
	Participation float64
	// AggregateFraction overrides the workload's partial-aggregation cut
	// (paper: 0.9) when in (0, 1]. At 1.0 the server aggregates every
	// surviving update with a streaming online fold, the cheapest setting
	// for very large cohorts.
	AggregateFraction float64
	// Scheme selects the federated optimization strategy: "fedavg",
	// "fedprox", "fedada", "fedca", "fedca-v1", "fedca-v2", "oort", "safa".
	Scheme string
	// Seed drives all randomness; equal seeds reproduce runs bit-for-bit.
	Seed uint64

	// DType selects the client-side training precision: "" or "f64" (the
	// default, bit-reproducible across releases), or "f32" (float32 forward/
	// backward/SGD on the workers, roughly native-SIMD-width faster per GEMM).
	// Master weights, deltas and aggregation stay float64 at every setting;
	// an f32 run is deterministic but converges along a slightly different
	// trajectory than f64.
	DType string
	// LocalIters is K, the default local iterations per round (paper: 125).
	LocalIters int
	// BatchSize is the local mini-batch size (paper: 50).
	BatchSize int
	// TrainSamples / TestSamples size the synthetic datasets.
	TrainSamples, TestSamples int
	// Alpha is the Dirichlet non-IID concentration (paper: 0.1).
	Alpha float64

	// Compress selects an upload compressor: "" or "none" (full precision),
	// "qsgd<levels>" (e.g. "qsgd7"), or "topk<percent>" (e.g. "topk1").
	Compress string
	// ModelBytes overrides the serialized model size used for transfer
	// times (0 = derive from the parameter count at 4 bytes each). Use it to
	// emulate a communication-heavy deployment with a scaled-down model.
	ModelBytes float64

	// Heterogeneous enables FedScale-like static speed spread; Dynamic
	// enables the paper's fast/slow mode toggling.
	Heterogeneous, Dynamic bool
	// DropoutProb injects per-round client dropout (0 = never).
	DropoutProb float64

	// Chaos is a fault-injection spec, e.g.
	// "drop=0.1,slow=0.3,degrade=0.2,outage=0.05,xfail=0.02,corrupt=0.01"
	// ("" or "none" disables injection; see chaos.ParseSpec for the full
	// grammar). Fault schedules derive deterministically from Seed: equal
	// seeds and specs reproduce every dropout, slowdown, link fault and
	// corruption bit-for-bit.
	Chaos string
	// MinQuorum is the minimum number of valid updates needed to aggregate a
	// round (0 = 1). Rounds falling short are skipped and recorded, never
	// fatal.
	MinQuorum int
	// MaxDeltaNorm, when positive, quarantines finite updates whose L2 norm
	// exceeds it (exploded deltas) before aggregation.
	MaxDeltaNorm float64

	// Telemetry, when non-nil, receives the run's live metrics and
	// virtual-time spans (build one with NewTelemetry). Nil disables
	// observability at zero cost; enabling it never changes a run.
	Telemetry *Telemetry

	// Journal, when non-nil, records the run's flight-recorder events and
	// per-client cost attribution (build one with NewJournal). Nil disables
	// it at zero cost; enabling it never changes a run.
	Journal *Journal

	// FedCA carries the FedCA hyperparameters (ignored by other schemes).
	FedCA core.Options
}

// DefaultOptions returns a small but representative configuration: the CNN
// workload, 16 clients, FedCA with the paper's hyperparameters.
func DefaultOptions() Options {
	return Options{
		Model:         "cnn",
		Clients:       16,
		Scheme:        "fedca",
		Seed:          1,
		LocalIters:    50,
		BatchSize:     32,
		TrainSamples:  4096,
		TestSamples:   1024,
		Alpha:         0.1,
		Heterogeneous: true,
		Dynamic:       true,
		FedCA:         core.DefaultOptions(50),
	}
}

// Round is one completed communication round, as reported to library users.
type Round struct {
	Index          int
	Start, End     float64 // virtual seconds
	Accuracy       float64
	MeanIterations float64
	EagerSent      float64 // mean eager transmissions per collected client
	Retransmitted  float64
	Collected      int
	Dropped        int
	// Skipped marks a round that closed without aggregating (below quorum
	// after dropouts and quarantines); the global model was left unchanged.
	Skipped bool
	// Quarantined counts updates rejected by server-side validation.
	Quarantined int
}

// Federation is a ready-to-run simulated FL deployment.
type Federation struct {
	opts    Options
	runner  *fl.Runner
	fedca   *core.Scheme
	results []fl.RoundResult

	// observers are invoked synchronously at the end of every RunRound, on
	// the driving goroutine (see OnRound).
	observers []func(Round)

	// lastMu guards lastRound so Snapshot can be polled from a monitoring
	// goroutine while RunRound executes on the driving one.
	lastMu    sync.Mutex
	lastRound Round
}

// New assembles a federation from options.
func New(opts Options) (*Federation, error) {
	w, err := expcfg.ByName(opts.Model)
	if err != nil {
		return nil, err
	}
	if opts.Fleet <= 0 && opts.Clients <= 0 {
		return nil, fmt.Errorf("fedca: Clients must be positive")
	}
	if opts.LocalIters > 0 {
		w.FL.LocalIters = opts.LocalIters
	}
	if opts.BatchSize > 0 {
		w.FL.BatchSize = opts.BatchSize
	}
	if opts.TrainSamples > 0 {
		w.TrainN = opts.TrainSamples
	}
	if opts.TestSamples > 0 {
		w.TestN = opts.TestSamples
	}
	if opts.Alpha > 0 {
		w.Alpha = opts.Alpha
	}
	w.FL.DType = opts.DType
	w.FL.DropoutProb = opts.DropoutProb
	if opts.ModelBytes > 0 {
		w.FL.ModelBytes = opts.ModelBytes
	}
	ccfg, err := chaos.ParseSpec(opts.Chaos)
	if err != nil {
		return nil, err
	}
	if ccfg.Enabled() {
		eng, err := chaos.NewEngine(ccfg, rng.New(opts.Seed).Fork("chaos-engine").Uint64())
		if err != nil {
			return nil, err
		}
		w.FL.Chaos = eng
	}
	w.FL.MinQuorum = opts.MinQuorum
	w.FL.MaxDeltaNorm = opts.MaxDeltaNorm
	if opts.AggregateFraction > 0 {
		w.FL.AggregateFraction = opts.AggregateFraction
	}
	w.FL.Participation = opts.Participation
	w.FL.Telemetry = opts.Telemetry
	w.FL.Journal = opts.Journal
	comp, err := compress.ByName(opts.Compress)
	if err != nil {
		return nil, err
	}
	if _, isNone := comp.(compress.None); !isNone {
		w.FL.Compressor = comp
	}

	tcfg := trace.Config{}
	if opts.Dynamic || opts.Heterogeneous {
		tcfg = trace.PaperConfig()
		if !opts.Heterogeneous {
			tcfg.HeterogeneitySigma = 0
		}
		tcfg.Dynamic = opts.Dynamic
	}

	var scheme fl.Scheme
	var fedcaScheme *core.Scheme
	switch opts.Scheme {
	case "fedavg":
		scheme = baseline.FedAvg{}
	case "fedprox":
		scheme = baseline.FedProx{Mu: 0.01}
	case "fedada":
		scheme = baseline.FedAda{K: w.FL.LocalIters, Tradeoff: 0.5}
	case "oort":
		scheme = baseline.NewOort(w.FL.LocalIters, 0.5, rng.New(opts.Seed).Fork("oort"))
	case "safa":
		scheme = baseline.NewSAFA(0.5)
	case "fedca", "fedca-v1", "fedca-v2":
		o := opts.FedCA
		if o.K == 0 {
			o = core.DefaultOptions(w.FL.LocalIters)
		}
		o.K = w.FL.LocalIters
		switch opts.Scheme {
		case "fedca-v1":
			o.Eager, o.Retransmit = false, false
		case "fedca-v2":
			o.Eager, o.Retransmit = true, false
		}
		fedcaScheme = core.NewScheme(o, rng.New(opts.Seed).Fork("scheme"))
		fedcaScheme.SetTelemetry(opts.Telemetry)
		fedcaScheme.SetJournal(opts.Journal)
		scheme = fedcaScheme
	default:
		return nil, fmt.Errorf("fedca: unknown scheme %q", opts.Scheme)
	}

	var runner *fl.Runner
	if opts.Fleet > 0 {
		tb, err := expcfg.BuildFleet(w, opts.Fleet, 0, tcfg, opts.Seed)
		if err != nil {
			return nil, err
		}
		runner, err = tb.NewRunner(scheme)
		if err != nil {
			return nil, err
		}
	} else {
		tb := expcfg.Build(w, opts.Clients, tcfg, opts.Seed)
		var err error
		runner, err = tb.NewRunner(scheme)
		if err != nil {
			return nil, err
		}
	}
	return &Federation{opts: opts, runner: runner, fedca: fedcaScheme}, nil
}

// RunRound executes one communication round.
func (f *Federation) RunRound() Round {
	res := f.runner.RunRound()
	f.results = append(f.results, res)
	r := toRound(res)
	f.lastMu.Lock()
	f.lastRound = r
	f.lastMu.Unlock()
	for _, obs := range f.observers {
		obs(r)
	}
	return r
}

// OnRound registers an observer invoked synchronously at the end of every
// completed round, on the goroutine driving RunRound — the registration
// hook soak/invariant monitors use to watch a run without owning its loop.
// Observers run after the round is visible to Snapshot; they must not call
// RunRound re-entrantly.
func (f *Federation) OnRound(obs func(Round)) {
	f.observers = append(f.observers, obs)
}

// Run executes n rounds and returns them.
func (f *Federation) Run(n int) []Round {
	out := make([]Round, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, f.RunRound())
	}
	return out
}

// RunToAccuracy runs rounds until the global model reaches target accuracy
// or maxRounds elapse, and reports the Table 1-style summary.
func (f *Federation) RunToAccuracy(target float64, maxRounds int) Convergence {
	for i := 0; i < maxRounds; i++ {
		if r := f.RunRound(); r.Accuracy >= target {
			break
		}
	}
	c := metrics.ConvergenceOf(f.results, target)
	return Convergence{
		Reached:      c.Reached,
		Rounds:       c.Rounds,
		TotalSeconds: c.TotalTime,
		PerRound:     c.PerRoundTime,
		BestAccuracy: c.BestAcc,
	}
}

// Convergence is the time-to-accuracy summary of a run.
type Convergence struct {
	Reached      bool
	Rounds       int
	TotalSeconds float64
	PerRound     float64
	BestAccuracy float64
}

// Accuracy returns the global model's current test accuracy (NaN-free; 0
// before any round).
func (f *Federation) Accuracy() float64 {
	if len(f.results) == 0 {
		return 0
	}
	return f.results[len(f.results)-1].Accuracy
}

// Now returns the current virtual time in seconds.
func (f *Federation) Now() float64 { return f.runner.Now() }

// Journal returns the flight recorder attached at construction (nil when
// Options.Journal was nil).
func (f *Federation) Journal() *Journal { return f.opts.Journal }

// Events returns every retained journal event with sequence number > since,
// in ascending order (Events(0) returns the whole retained window; nil when
// no journal is attached). Safe to call from any goroutine, including while
// RunRound executes.
func (f *Federation) Events(since uint64) []Event { return f.opts.Journal.Since(since) }

// Rounds returns every completed round.
func (f *Federation) Rounds() []Round {
	out := make([]Round, len(f.results))
	for i, r := range f.results {
		out[i] = toRound(r)
	}
	return out
}

// FedCAStats exposes FedCA's behavioural counters (early stops, eager
// transmissions, retransmissions); ok is false for non-FedCA schemes.
//
// It is safe to call from another goroutine while RunRound executes — e.g. a
// monitoring loop charting Fig. 8-style behaviour live — because the scheme
// snapshots its counters under a lock. The rest of Federation's methods
// follow the usual rule: one goroutine drives rounds, no concurrent RunRound.
func (f *Federation) FedCAStats() (stats core.SchemeStats, ok bool) {
	if f.fedca == nil {
		return core.SchemeStats{}, false
	}
	return f.fedca.Stats(), true
}

// DegradationStats exposes the runner's graceful-degradation counters —
// skipped rounds, quarantined updates, dropped client-rounds, link
// retransmissions. Like FedCAStats, it is safe to poll from another
// goroutine while RunRound executes.
func (f *Federation) DegradationStats() fl.RunnerStats { return f.runner.Stats() }

// ParamsChecksum returns the SHA-256 of the global model's parameter vector
// (8-byte little-endian IEEE 754 bits per coordinate), hex-encoded: the
// run's aggregate content address. Two runs with equal checksums hold
// bit-identical global models. Call it between rounds — unlike Snapshot it
// reads the parameters themselves, which RunRound mutates.
func (f *Federation) ParamsChecksum() string {
	flat := f.runner.GlobalFlat()
	h := sha256.New()
	var b [8]byte
	for _, v := range flat {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TokenSnapshot reports the process-wide CPU-token budget's state: the
// current capacity, tokens in flight, and the high-water mark of
// concurrently held tokens. MaxInflight <= Cap is one of the soak harness's
// invariants (the budget bounds the whole process's parallelism).
type TokenSnapshot struct {
	Cap      int `json:"cap"`
	Inflight int `json:"inflight"`
	Max      int `json:"max_inflight"`
}

// Snapshot is the live status of a federation, JSON-ready for an
// introspection endpoint.
type Snapshot struct {
	// Round is the number of completed rounds (including skipped ones).
	Round int `json:"round"`
	// VirtualTime is the end of the last completed round, in virtual seconds.
	VirtualTime float64 `json:"virtual_time_seconds"`
	// Accuracy is the global model's accuracy after the last aggregation.
	Accuracy float64 `json:"accuracy"`
	// Degradation aggregates skipped rounds, quarantines, dropouts and link
	// retries over the whole run.
	Degradation fl.RunnerStats `json:"degradation"`
	// Tokens mirrors the process-wide CPU-token budget (shared across all
	// federations, not per-run).
	Tokens TokenSnapshot `json:"tokens"`
	// FedCA carries the scheme's behavioural counters; nil for non-FedCA
	// schemes.
	FedCA *core.SchemeStats `json:"fedca,omitempty"`
}

// Snapshot reports the federation's current status. Unlike Rounds and
// Accuracy it is safe to call from a monitoring goroutine while RunRound
// executes — a live /status endpoint polls it (see NewTelemetryMux).
func (f *Federation) Snapshot() Snapshot {
	f.lastMu.Lock()
	last := f.lastRound
	f.lastMu.Unlock()
	st := f.runner.Stats()
	budget := cputok.Default()
	snap := Snapshot{
		Round:       st.Rounds,
		VirtualTime: last.End,
		Accuracy:    last.Accuracy,
		Degradation: st,
		Tokens: TokenSnapshot{
			Cap:      budget.Cap(),
			Inflight: budget.Inflight(),
			Max:      budget.MaxInflight(),
		},
	}
	if f.fedca != nil {
		st := f.fedca.Stats()
		snap.FedCA = &st
	}
	return snap
}

func toRound(res fl.RoundResult) Round {
	dropped := 0
	for _, u := range res.Discarded {
		if u.Dropped {
			dropped++
		}
	}
	return Round{
		Index:          res.Round,
		Start:          res.Start,
		End:            res.End,
		Accuracy:       res.Accuracy,
		MeanIterations: res.MeanIterations,
		EagerSent:      res.MeanEagerSent,
		Retransmitted:  res.MeanRetrans,
		Collected:      len(res.Collected),
		Dropped:        dropped,
		Skipped:        res.Skipped,
		Quarantined:    res.Quarantined,
	}
}
