package fedca_test

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"

	"fedca/internal/execpool"
	"fedca/internal/experiments"
)

// executorScale is a reduced scale for benchmarking the executor itself: the
// workload must be heavy enough that cell scheduling dominates noise, but
// light enough that three full passes (serial / parallel / warm) fit in a CI
// bench-smoke budget.
func executorScale() experiments.Scale {
	return experiments.Scale{
		Name: "tiny", Clients: 4, Rounds: 12, K: 12,
		TrainN: 384, TestN: 128, BatchSize: 12,
		EarlyRound: 1, LateRound: 4, Window: 2,
		ProfilePeriod: 3,
	}
}

// executorBenchIDs share convergence cells (Fig. 7 ∩ Table 1 ∩ Fig. 9), so
// the suite measures dedup as well as parallel fan-out.
var executorBenchIDs = []string{"fig7", "table1", "fig9"}

type executorModeReport struct {
	SecPerOp      float64 `json:"sec_per_op"`
	CellsComputed int64   `json:"cells_computed"`
	MemHits       int64   `json:"mem_hits"`
	DiskHits      int64   `json:"disk_hits"`
	DedupWaits    int64   `json:"dedup_waits"`
	Speedup       float64 `json:"speedup_vs_serial,omitempty"`
}

// BenchmarkCellExecutor measures the cell executor end to end on a fixed
// artifact set: the serial reference path, cold-cache parallel execution,
// and a warm content-addressed cache. After the sub-benchmarks it writes the
// machine-readable BENCH_executor.json (override the path with
// FEDCA_BENCH_JSON) so future changes have a perf trajectory to compare
// against.
func BenchmarkCellExecutor(b *testing.B) {
	// The executor's whole point is cross-cell parallelism, so the benchmark
	// runs at full core count (or FEDCA_BENCH_GOMAXPROCS) regardless of how
	// the test binary was launched; the CPU-token budget tracks GOMAXPROCS,
	// so the cell fan-out follows. The JSON records both the setting and the
	// machine's real core count, so a 1-CPU container's numbers are honestly
	// labelled rather than passed off as a parallel measurement.
	procs := runtime.NumCPU()
	if v := os.Getenv("FEDCA_BENCH_GOMAXPROCS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			b.Fatalf("FEDCA_BENCH_GOMAXPROCS must be a positive integer: %q", v)
		}
		procs = n
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

	s := executorScale()
	const seed = 17
	runIDs := func(b *testing.B) {
		for _, id := range executorBenchIDs {
			if _, err := experiments.Run(id, s, seed); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Every mode reconfigures the executor per iteration so each op starts
	// from cold memory; the executor the other benchmarks share is restored
	// at the end.
	defer experiments.Configure(benchExecutorOptions())

	report := map[string]*executorModeReport{}
	measure := func(name string, opts execpool.Options) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				experiments.Configure(opts)
				b.StartTimer()
				runIDs(b)
			}
			st := experiments.ExecStats()
			report[name] = &executorModeReport{
				SecPerOp:      b.Elapsed().Seconds() / float64(b.N),
				CellsComputed: st.Computed,
				MemHits:       st.MemHits,
				DiskHits:      st.DiskHits,
				DedupWaits:    st.DedupWaits,
			}
			b.ReportMetric(float64(st.Computed), "cells/op")
		})
	}

	measure("serial", execpool.Options{Workers: 1})
	measure("parallel", execpool.Options{Workers: experiments.DefaultWorkers()})

	cacheDir := b.TempDir()
	warmOpts := execpool.Options{Workers: experiments.DefaultWorkers(), CacheDir: cacheDir}
	experiments.Configure(warmOpts)
	runIDs(b) // prewarm the disk cache once, outside the timed region
	measure("warm", warmOpts)

	if serial := report["serial"]; serial != nil {
		for name, m := range report {
			if name != "serial" && m.SecPerOp > 0 {
				m.Speedup = serial.SecPerOp / m.SecPerOp
			}
		}
	}
	writeExecutorBenchJSON(b, procs, report)
}

// writeExecutorBenchJSON takes the GOMAXPROCS the sub-benchmarks ran at as an
// argument: the testing framework re-enters the parent function around b.Run,
// so querying runtime.GOMAXPROCS here would read the already-restored value.
func writeExecutorBenchJSON(b *testing.B, procs int, report map[string]*executorModeReport) {
	if len(report) == 0 {
		return
	}
	path := os.Getenv("FEDCA_BENCH_JSON")
	if path == "" {
		path = "BENCH_executor.json"
	}
	doc := struct {
		Bench       string                         `json:"bench"`
		Experiments []string                       `json:"experiments"`
		CPUs        int                            `json:"cpus"`
		GOMAXPROCS  int                            `json:"gomaxprocs"`
		Modes       map[string]*executorModeReport `json:"modes"`
	}{
		Bench:       "BenchmarkCellExecutor",
		Experiments: executorBenchIDs,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  procs,
		Modes:       report,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", path)
}
