package fedca_test

import (
	"fmt"

	fedca "fedca"
)

// The smallest possible FedCA run: assemble a federation and run rounds.
func ExampleNew() {
	opts := fedca.DefaultOptions()
	opts.Clients = 4
	opts.LocalIters = 5
	opts.BatchSize = 8
	opts.TrainSamples = 256
	opts.TestSamples = 64
	opts.Seed = 7

	f, err := fedca.New(opts)
	if err != nil {
		panic(err)
	}
	rounds := f.Run(3)
	fmt.Println("rounds:", len(rounds))
	fmt.Println("virtual time advanced:", f.Now() > 0)
	fmt.Println("accuracy in range:", f.Accuracy() >= 0 && f.Accuracy() <= 1)
	// Output:
	// rounds: 3
	// virtual time advanced: true
	// accuracy in range: true
}

// Comparing two schemes on the identical federation (same seed ⇒ same data,
// partitions, model init and speed traces).
func ExampleFederation_RunToAccuracy() {
	run := func(scheme string) fedca.Convergence {
		opts := fedca.DefaultOptions()
		opts.Scheme = scheme
		opts.Clients = 4
		opts.LocalIters = 8
		opts.BatchSize = 8
		opts.TrainSamples = 256
		opts.TestSamples = 64
		opts.Seed = 3
		f, err := fedca.New(opts)
		if err != nil {
			panic(err)
		}
		return f.RunToAccuracy(0.5, 20)
	}
	avg := run("fedavg")
	ca := run("fedca")
	fmt.Println("fedavg reached:", avg.Reached)
	fmt.Println("fedca reached:", ca.Reached)
	fmt.Println("fedca no slower:", ca.TotalSeconds <= avg.TotalSeconds)
	// Output:
	// fedavg reached: true
	// fedca reached: true
	// fedca no slower: true
}

// FedCA's behavioural counters: early stops, eager transmissions and
// retransmissions accumulated over a run.
func ExampleFederation_FedCAStats() {
	opts := fedca.DefaultOptions()
	opts.Clients = 4
	opts.LocalIters = 6
	opts.BatchSize = 8
	opts.TrainSamples = 256
	opts.TestSamples = 64
	opts.FedCA.ProfilePeriod = 2
	f, err := fedca.New(opts)
	if err != nil {
		panic(err)
	}
	f.Run(4)
	stats, ok := f.FedCAStats()
	fmt.Println("is fedca:", ok)
	fmt.Println("profiled anchor client-rounds:", stats.AnchorRounds)
	// Output:
	// is fedca: true
	// profiled anchor client-rounds: 8
}
